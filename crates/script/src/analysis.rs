//! taco-vet: static analysis for TacoScript agent code.
//!
//! The paper stores an agent as "a Tcl procedure; the text of the procedure is
//! stored in the agent's CODE folder" — which means a typo'd builtin or a
//! use-before-set variable only surfaces after the agent has migrated halfway
//! across the system.  This pass consumes [`parse_script`] output and reports
//! spanned [`Diagnostic`]s *before* the agent is launched:
//!
//! * **unknown-command** (error): a command that is neither a builtin nor a
//!   `proc` defined anywhere in the script;
//! * **wrong-arity** (error): wrong argument count for any builtin or user
//!   `proc` (argument counts are static in TacoScript: substitution never
//!   splits words);
//! * **use-before-set** (error) / **possibly-unset** (warning): definite-
//!   assignment dataflow with proper joins across `if`/`while`/`foreach` —
//!   a variable assigned on *no* path is an error, on *some* paths a warning;
//! * **unreachable** (warning): code after an unconditional `return`, `halt`,
//!   `break`, `continue` or `error`;
//! * **after-move-to** (warning): code after `move_to` other than `return` or
//!   `halt` — it runs at the *departing* site, which is rarely intended;
//! * **unknown-agent** (error): a literal `meet` target that is neither a
//!   wellknown agent nor locally installed (only checked when the caller
//!   provides the known-agent set);
//! * **no-loop-exit** (warning): a `while` whose condition no body statement
//!   can ever change and whose body cannot break out — it will burn the whole
//!   step budget.
//!
//! The analyzer is deliberately conservative: anything it cannot see through
//! (a computed command name, an `eval` of a built string, a non-braced body)
//! is assumed to be fine.  `catch` bodies are exempt from all checks — failing
//! inside `catch` is a supported idiom, not a defect.  The invariant that
//! matters is **zero false positives**: every script the interpreter runs
//! cleanly must vet cleanly, because `tacoma-core` rejects agents whose CODE
//! folder produces errors at install time.

use crate::diag::Diagnostic;
use crate::expr::eval_expr;
use crate::parser::{parse_script, Command, Span, Word, WordKind, WordPart};
use crate::value::{is_truthy, parse_list};
use std::collections::{BTreeMap, BTreeSet};

/// Nesting depth cap for the analyzer's recursive descent (mirrors the
/// interpreter's `max_depth`); beyond it we stop descending rather than risk
/// unbounded recursion on adversarial input.
const MAX_DEPTH: u32 = 64;

/// Configuration for [`analyze_with`].
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    known_agents: Option<BTreeSet<String>>,
    predefined: BTreeSet<String>,
    source_name: Option<String>,
}

impl AnalysisConfig {
    /// A configuration with no known-agent set (so `meet` targets are not
    /// checked) and no predefined variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables the `meet`-target check with the given set of resolvable agent
    /// names (wellknown agents plus whatever is installed at the site).
    pub fn known_agents<I, S>(mut self, agents: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.known_agents = Some(agents.into_iter().map(Into::into).collect());
        self
    }

    /// Adds one resolvable agent name (enables the `meet` check if it was
    /// not already enabled).
    pub fn add_known_agent(&mut self, name: impl Into<String>) {
        self.known_agents
            .get_or_insert_with(BTreeSet::new)
            .insert(name.into());
    }

    /// Declares variables that are bound before the script runs (for example
    /// arguments an agent receives), exempting them from use-before-set.
    pub fn predefined<I, S>(mut self, vars: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.predefined = vars.into_iter().map(Into::into).collect();
        self
    }

    /// Adds one predefined variable.
    pub fn add_predefined(&mut self, name: impl Into<String>) {
        self.predefined.insert(name.into());
    }

    /// Names the source the script came from (a real file path for scripts on
    /// disk, a folder name like `CODE` for scripts in flight), so rendered
    /// diagnostics point somewhere actionable instead of the `<script>`
    /// placeholder.
    pub fn source_name(mut self, name: impl Into<String>) -> Self {
        self.source_name = Some(name.into());
        self
    }

    /// The label diagnostics should be rendered against: the configured
    /// source name, or `<script>` when none was given.
    pub fn source_label(&self) -> &str {
        self.source_name.as_deref().unwrap_or("<script>")
    }
}

/// Analyzes a script with the default configuration (no `meet` check, no
/// predefined variables) and returns its diagnostics sorted by position.
pub fn analyze(src: &str) -> Vec<Diagnostic> {
    analyze_with(src, &AnalysisConfig::default())
}

/// Analyzes a script with an explicit [`AnalysisConfig`].
pub fn analyze_with(src: &str, config: &AnalysisConfig) -> Vec<Diagnostic> {
    let mut info = Collected::default();
    collect_script(src, 0, &mut info);
    let mut analyzer = Analyzer {
        config,
        info,
        diags: Vec::new(),
    };
    let mut env = Env::default();
    for var in &config.predefined {
        env.assign(var);
    }
    analyzer.check_script(src, Span::START, &mut env, Ctx::default());
    let usage = scan_usage(src);
    if !usage.opaque {
        for (name, span) in &usage.writes {
            if !usage.reads.contains(name) && !config.predefined.contains(name) {
                analyzer.diags.push(Diagnostic::warning(
                    "unused-variable",
                    *span,
                    format!("variable '{name}' is assigned but never read"),
                ));
            }
        }
    }
    analyzer
        .diags
        .sort_by(|a, b| a.span.cmp(&b.span).then(b.severity.cmp(&a.severity)));
    analyzer.diags
}

/// Analyzes a script and renders error-severity findings into a report
/// anchored at the configured [`AnalysisConfig::source_name`].  This is the
/// entry point install-time gates use: `Ok(())` means the script may run.
pub fn vet(src: &str, config: &AnalysisConfig) -> Result<(), String> {
    let diags = analyze_with(src, config);
    if crate::diag::has_errors(&diags) {
        Err(crate::diag::render_report(&diags, config.source_label()))
    } else {
        Ok(())
    }
}

// --- builtin signature table -------------------------------------------------

/// (min, max) argument counts for each builtin.  This is the shared
/// [`crate::builtins::BUILTINS`] table — the interpreter enforces the same
/// entries at runtime, so the two can never drift.
fn builtin_arity(name: &str) -> Option<(usize, Option<usize>)> {
    crate::builtins::builtin(name).map(|spec| (spec.min_args, spec.max_args))
}

// --- pre-pass: collect procs and all assigned names --------------------------

#[derive(Debug, Default)]
struct Collected {
    /// proc name → parameter count, for arity checking of user procs.
    procs: BTreeMap<String, usize>,
    /// Every variable name assigned *anywhere* in the script (any scope).
    /// Used to keep proc-body checks conservative: procs read outer dynamic
    /// scopes, so only a name assigned nowhere at all is a definite error.
    assigned: BTreeSet<String>,
}

fn collect_script(src: &str, depth: u32, out: &mut Collected) {
    if depth > MAX_DEPTH {
        return;
    }
    let Ok(cmds) = parse_script(src) else { return };
    for cmd in &cmds {
        for word in &cmd.words {
            if let WordKind::Parts(parts) = &word.kind {
                for part in parts {
                    if let WordPart::Command(inner) = part {
                        collect_script(inner, depth + 1, out);
                    }
                }
            }
        }
        let Some(name) = cmd.words[0].static_text() else {
            continue;
        };
        let args = &cmd.words[1..];
        let static_arg = |i: usize| args.get(i).and_then(Word::static_text);
        let braced_arg = |i: usize| {
            args.get(i).and_then(|w| match &w.kind {
                WordKind::Braced(t) => Some(t.as_str()),
                WordKind::Parts(_) => None,
            })
        };
        match name {
            "set" if args.len() >= 2 => {
                if let Some(v) = static_arg(0) {
                    out.assigned.insert(v.to_string());
                }
            }
            "incr" | "append" | "lappend" => {
                if let Some(v) = static_arg(0) {
                    out.assigned.insert(v.to_string());
                }
            }
            "foreach" => {
                if let Some(v) = static_arg(0) {
                    out.assigned.insert(v.to_string());
                }
                if let Some(body) = braced_arg(2) {
                    collect_script(body, depth + 1, out);
                }
            }
            "while" | "if" => {
                // Conditions and bodies both arrive braced; collecting a
                // condition as if it were a script is harmless (nothing in it
                // matches an assignment shape unless it really is one).
                for (i, _) in args.iter().enumerate() {
                    if let Some(text) = braced_arg(i) {
                        collect_script(text, depth + 1, out);
                    }
                }
            }
            "catch" => {
                if let Some(body) = braced_arg(0) {
                    collect_script(body, depth + 1, out);
                }
                if let Some(v) = static_arg(1) {
                    out.assigned.insert(v.to_string());
                }
            }
            "eval" => {
                if let Some(body) = braced_arg(0) {
                    collect_script(body, depth + 1, out);
                }
            }
            "proc" => {
                if let (Some(pname), Some(params)) = (static_arg(0), static_arg(1)) {
                    let params = parse_list(params);
                    out.procs.insert(pname.to_string(), params.len());
                    for p in params {
                        out.assigned.insert(p);
                    }
                }
                if let Some(body) = braced_arg(2) {
                    collect_script(body, depth + 1, out);
                }
            }
            _ => {}
        }
    }
}

// --- unused-variable pass ----------------------------------------------------

/// What the unused-variable scan learned about a script.
#[derive(Debug, Default)]
struct Usage {
    /// Every name that could possibly be read anywhere: `$name` in any word
    /// or braced text, `[...]` scripts, one-argument `set`, the
    /// read-modify-write builtins, `unset` targets, `catch` result variables,
    /// `foreach` loop variables and `proc` parameters.  Deliberately
    /// over-collected: a phantom read only suppresses a warning.
    reads: BTreeSet<String>,
    /// First plain `set name value` site per name, outside `catch` bodies.
    writes: BTreeMap<String, Span>,
    /// Something dynamic defeated the scan (a computed command or variable
    /// name, a non-braced `eval`): suppress every unused-variable warning.
    opaque: bool,
}

fn scan_usage(src: &str) -> Usage {
    let mut usage = Usage::default();
    scan_usage_script(src, Span::START, 0, false, &mut usage);
    usage
}

fn scan_usage_script(src: &str, base: Span, depth: u32, in_catch: bool, out: &mut Usage) {
    if depth > MAX_DEPTH {
        out.opaque = true;
        return;
    }
    let Ok(cmds) = parse_script(src) else { return };
    for cmd in &cmds {
        for word in &cmd.words {
            match &word.kind {
                WordKind::Parts(parts) => {
                    for part in parts {
                        match part {
                            WordPart::Literal(_) => {}
                            WordPart::Variable(name) => {
                                out.reads.insert(name.clone());
                            }
                            WordPart::Command(script) => scan_usage_script(
                                script,
                                map_span(base, word.span),
                                depth + 1,
                                in_catch,
                                out,
                            ),
                        }
                    }
                }
                // Braced text may later be evaluated as a condition or expr:
                // harvest its `$name`s and scan its `[...]` scripts.  Braced
                // *bodies* are additionally walked as scripts below.
                WordKind::Braced(text) => scan_braced_reads(
                    text,
                    map_span(base, content_base(word)),
                    depth,
                    in_catch,
                    out,
                ),
            }
        }
        let Some(name) = cmd.words[0].static_text() else {
            out.opaque = true;
            continue;
        };
        let args = &cmd.words[1..];
        let static_arg = |i: usize| args.get(i).and_then(Word::static_text);
        match name {
            "set" => match (static_arg(0), args.len()) {
                (Some(v), 2) if !in_catch => {
                    out.writes
                        .entry(v.to_string())
                        .or_insert_with(|| map_span(base, cmd.span));
                }
                (Some(_), 2) => {}
                (Some(v), 1) => {
                    out.reads.insert(v.to_string());
                }
                (None, _) => out.opaque = true,
                _ => {}
            },
            "unset" => {
                for (i, _) in args.iter().enumerate() {
                    match static_arg(i) {
                        Some(v) => {
                            out.reads.insert(v.to_string());
                        }
                        None => out.opaque = true,
                    }
                }
            }
            // Read-modify-write: the variable's value is consumed.
            "incr" | "append" | "lappend" => match static_arg(0) {
                Some(v) => {
                    out.reads.insert(v.to_string());
                }
                None => out.opaque = true,
            },
            "foreach" => {
                // The loop variable is bound by the loop itself; an unused
                // one is idiomatic (`foreach _ [...] { ... }`), so exempt it.
                match static_arg(0) {
                    Some(v) => {
                        out.reads.insert(v.to_string());
                    }
                    None => out.opaque = true,
                }
                if let Some((text, b)) = usage_body(args, base, 2, out) {
                    scan_usage_script(text, b, depth + 1, in_catch, out);
                }
            }
            "while" => {
                if let Some((text, b)) = usage_body(args, base, 1, out) {
                    scan_usage_script(text, b, depth + 1, in_catch, out);
                }
            }
            "if" => {
                let mut i = 0;
                while i < args.len() {
                    if i == 0 || args[i].static_text() == Some("elseif") {
                        let off = usize::from(i != 0);
                        if args.get(i + off + 1).is_some() {
                            if let Some((text, b)) = usage_body(args, base, i + off + 1, out) {
                                scan_usage_script(text, b, depth + 1, in_catch, out);
                            }
                        }
                        i += off + 2;
                    } else if args[i].static_text() == Some("else") {
                        if args.get(i + 1).is_some() {
                            if let Some((text, b)) = usage_body(args, base, i + 1, out) {
                                scan_usage_script(text, b, depth + 1, in_catch, out);
                            }
                        }
                        break;
                    } else {
                        break; // malformed: wrong-arity reported by the main pass
                    }
                }
            }
            "catch" => {
                if let Some((text, b)) = usage_body(args, base, 0, out) {
                    scan_usage_script(text, b, depth + 1, true, out);
                }
                // The result variable is host-observable state; exempt it.
                if let Some(v) = static_arg(1) {
                    out.reads.insert(v.to_string());
                }
            }
            "proc" => {
                // Parameters are bound by the caller; exempt them.
                if let Some(params) = static_arg(1) {
                    for p in parse_list(params) {
                        out.reads.insert(p);
                    }
                }
                if let Some((text, b)) = usage_body(args, base, 2, out) {
                    scan_usage_script(text, b, depth + 1, in_catch, out);
                }
            }
            "eval" => {
                if args.len() == 1 {
                    if let Some((text, b)) = usage_body(args, base, 0, out) {
                        scan_usage_script(text, b, depth + 1, in_catch, out);
                    }
                } else {
                    out.opaque = true; // script assembled from pieces
                }
            }
            _ => {}
        }
    }
}

/// Fetches a braced body argument for the usage scan; a body position that
/// exists but is not braced is a script built at runtime, which defeats the
/// scan entirely.
fn usage_body<'a>(
    args: &'a [Word],
    base: Span,
    i: usize,
    out: &mut Usage,
) -> Option<(&'a str, Span)> {
    let word = args.get(i)?;
    match &word.kind {
        WordKind::Braced(t) => Some((t.as_str(), map_span(base, content_base(word)))),
        WordKind::Parts(_) => {
            out.opaque = true;
            None
        }
    }
}

/// Scans brace-quoted text the way `substitute` would: `$name`/`${name}` are
/// reads, `[...]` is an embedded script.
fn scan_braced_reads(text: &str, base: Span, depth: u32, in_catch: bool, out: &mut Usage) {
    if depth > MAX_DEPTH {
        out.opaque = true;
        return;
    }
    for name in cond_var_names(text) {
        out.reads.insert(name);
    }
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '[' {
            i += 1;
            col += 1;
            let sspan = map_span(base, Span::new(line, col));
            let mut nesting = 1;
            let mut inner = String::new();
            while i < chars.len() && nesting > 0 {
                match chars[i] {
                    '[' => {
                        nesting += 1;
                        inner.push('[');
                    }
                    ']' => {
                        nesting -= 1;
                        if nesting > 0 {
                            inner.push(']');
                        }
                    }
                    ch => inner.push(ch),
                }
                if chars[i] == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
            scan_usage_script(&inner, sspan, depth + 1, in_catch, out);
        } else {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }
    }
}

// --- the main pass -----------------------------------------------------------

/// Definite-assignment state at one program point.
#[derive(Debug, Clone, Default)]
struct Env {
    /// Assigned on every path reaching this point.
    definite: BTreeSet<String>,
    /// Assigned on at least one path (superset of `definite`).
    maybe: BTreeSet<String>,
}

impl Env {
    fn assign(&mut self, name: &str) {
        self.definite.insert(name.to_string());
        self.maybe.insert(name.to_string());
    }

    fn unassign(&mut self, name: &str) {
        self.definite.remove(name);
        self.maybe.remove(name);
    }

    /// Folds another path's assignments in as merely *possible*.
    fn merge_maybe(&mut self, other: &Env) {
        for v in &other.maybe {
            self.maybe.insert(v.clone());
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Ctx {
    /// Inside a proc body: outer-scope reads are legal (dynamic scoping), so
    /// only never-assigned-anywhere names are errors and nothing warns.
    in_proc: bool,
    /// Inside a `catch` body: all diagnostics are suppressed.
    in_catch: bool,
    depth: u32,
}

impl Ctx {
    fn deeper(self) -> Ctx {
        Ctx {
            depth: self.depth + 1,
            ..self
        }
    }
}

/// How a block of commands can end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Exit {
    /// Control can fall off the end.
    Falls,
    /// Every path ends in `return`/`halt`/`break`/`continue`/`error`.
    Terminates,
}

/// What one command does to control flow.
struct CmdEffect {
    /// `Some(cmd)` when the command unconditionally leaves the block.
    terminal: Option<&'static str>,
    /// The command queues a migration (`move_to`).
    migrates: bool,
}

impl CmdEffect {
    const NONE: CmdEffect = CmdEffect {
        terminal: None,
        migrates: false,
    };

    fn terminal(cause: &'static str) -> CmdEffect {
        CmdEffect {
            terminal: Some(cause),
            migrates: false,
        }
    }
}

/// Maps a span relative to an embedded script (braced body, condition text,
/// bracketed substitution) to an absolute span in the original source.
fn map_span(base: Span, rel: Span) -> Span {
    if rel.line == 1 {
        Span::new(base.line, base.col + rel.col - 1)
    } else {
        Span::new(base.line + rel.line - 1, rel.col)
    }
}

/// The position where a braced word's *content* starts (one past the `{`).
fn content_base(word: &Word) -> Span {
    Span::new(word.span.line, word.span.col + 1)
}

struct Analyzer<'c> {
    config: &'c AnalysisConfig,
    info: Collected,
    diags: Vec<Diagnostic>,
}

impl Analyzer<'_> {
    fn push(&mut self, ctx: Ctx, diag: Diagnostic) {
        if !ctx.in_catch {
            self.diags.push(diag);
        }
    }

    /// Checks one script (the whole source, or an embedded body) and reports
    /// how it can end.  `base` anchors relative spans in the original source.
    fn check_script(&mut self, src: &str, base: Span, env: &mut Env, ctx: Ctx) -> Exit {
        if ctx.depth > MAX_DEPTH {
            return Exit::Falls;
        }
        let cmds = match parse_script(src) {
            Ok(c) => c,
            Err(e) => {
                self.push(
                    ctx,
                    Diagnostic::error("parse", map_span(base, e.span()), e.message),
                );
                return Exit::Falls;
            }
        };
        let mut terminated: Option<&'static str> = None;
        let mut warned_unreachable = false;
        let mut moved = false;
        let mut warned_after_move = false;
        for cmd in &cmds {
            let span = map_span(base, cmd.span);
            if let Some(cause) = terminated {
                if !warned_unreachable {
                    self.push(
                        ctx,
                        Diagnostic::warning(
                            "unreachable",
                            span,
                            format!("unreachable code after '{cause}'"),
                        ),
                    );
                    warned_unreachable = true;
                }
                continue;
            }
            if moved && !warned_after_move {
                let name = cmd.words[0].static_text();
                if name != Some("return") && name != Some("halt") {
                    self.push(
                        ctx,
                        Diagnostic::warning(
                            "after-move-to",
                            span,
                            "code after 'move_to' still runs at the departing site before \
                             migration; conventionally only 'return' or 'halt' follow it",
                        ),
                    );
                    warned_after_move = true;
                }
            }
            let effect = self.check_command(cmd, base, env, ctx);
            if let Some(cause) = effect.terminal {
                terminated = Some(cause);
            }
            if effect.migrates {
                moved = true;
            }
        }
        if terminated.is_some() {
            Exit::Terminates
        } else {
            Exit::Falls
        }
    }

    fn check_command(&mut self, cmd: &Command, base: Span, env: &mut Env, ctx: Ctx) -> CmdEffect {
        // Generic pass first: every substitution in every word is evaluated
        // left-to-right before the command runs, exactly like the interpreter.
        for word in &cmd.words {
            self.check_word(word, base, env, ctx);
        }
        let Some(name) = cmd.words[0].static_text().map(str::to_string) else {
            return CmdEffect::NONE; // computed command name: opaque
        };
        let span = map_span(base, cmd.span);
        let args = &cmd.words[1..];
        let argc = args.len();

        if let Some((min, max)) = builtin_arity(&name) {
            if argc < min || max.is_some_and(|m| argc > m) {
                self.push(
                    ctx,
                    Diagnostic::error("wrong-arity", span, arity_msg(&name, min, max, argc)),
                );
                return CmdEffect::NONE;
            }
        } else if let Some(&params) = self.info.procs.get(name.as_str()) {
            if argc != params {
                self.push(
                    ctx,
                    Diagnostic::error(
                        "wrong-arity",
                        span,
                        format!("proc '{name}' expects {params} argument(s), got {argc}"),
                    ),
                );
            }
            return CmdEffect::NONE;
        } else {
            let hint = self
                .suggest(&name)
                .map(|s| format!("; did you mean '{s}'?"))
                .unwrap_or_default();
            self.push(
                ctx,
                Diagnostic::error(
                    "unknown-command",
                    span,
                    format!("unknown command '{name}'{hint}"),
                ),
            );
            return CmdEffect::NONE;
        }

        match name.as_str() {
            "set" => {
                if let Some(var) = args[0].static_text() {
                    if argc == 1 {
                        // `set x` with one argument *reads* x.
                        self.check_var(var, map_span(base, args[0].span), env, ctx);
                    } else {
                        env.assign(var);
                    }
                }
            }
            "unset" => {
                for a in args {
                    if let Some(var) = a.static_text() {
                        env.unassign(var);
                    }
                }
            }
            // `incr`/`append`/`lappend` default a missing variable to 0 / "",
            // so they assign without requiring a prior set.
            "incr" | "append" | "lappend" => {
                if let Some(var) = args[0].static_text() {
                    env.assign(var);
                }
            }
            "expr" if argc == 1 => {
                if let WordKind::Braced(text) = &args[0].kind {
                    self.scan_condition(text, map_span(base, content_base(&args[0])), env, ctx);
                }
            }
            "if" => return self.check_if(args, base, span, env, ctx),
            "while" => self.check_while(args, base, span, env, ctx),
            "foreach" => self.check_foreach(args, base, env, ctx),
            "proc" => self.check_proc(args, base, ctx),
            "catch" => self.check_catch(args, base, env, ctx),
            "eval" if argc == 1 => {
                if let WordKind::Braced(text) = &args[0].kind {
                    let exit = self.check_script(
                        text,
                        map_span(base, content_base(&args[0])),
                        env,
                        ctx.deeper(),
                    );
                    if exit == Exit::Terminates {
                        return CmdEffect::terminal("eval");
                    }
                }
            }
            "return" => return CmdEffect::terminal("return"),
            "halt" => return CmdEffect::terminal("halt"),
            "break" => return CmdEffect::terminal("break"),
            "continue" => return CmdEffect::terminal("continue"),
            "error" => return CmdEffect::terminal("error"),
            "meet" => {
                if let (Some(agents), Some(target)) =
                    (&self.config.known_agents, args[0].static_text())
                {
                    if !agents.contains(target) {
                        self.push(
                            ctx,
                            Diagnostic::error(
                                "unknown-agent",
                                span,
                                format!(
                                    "meet target '{target}' is neither a wellknown agent nor \
                                     installed locally"
                                ),
                            ),
                        );
                    }
                }
            }
            "move_to" => {
                return CmdEffect {
                    terminal: None,
                    migrates: true,
                }
            }
            "string" => self.check_string(args, span, ctx),
            _ => {}
        }
        CmdEffect::NONE
    }

    /// Generic word check: variables and command substitutions in non-braced
    /// words.  Braced words are literal — nothing to check.
    fn check_word(&mut self, word: &Word, base: Span, env: &mut Env, ctx: Ctx) {
        let WordKind::Parts(parts) = &word.kind else {
            return;
        };
        let span = map_span(base, word.span);
        for part in parts {
            match part {
                WordPart::Literal(_) => {}
                WordPart::Variable(name) => self.check_var(name, span, env, ctx),
                // A substitution's script runs unconditionally as part of word
                // evaluation, so its assignments are definite; its `return`
                // does not propagate (the interpreter takes its value).
                WordPart::Command(script) => {
                    self.check_script(script, span, env, ctx.deeper());
                }
            }
        }
    }

    fn check_var(&mut self, name: &str, span: Span, env: &Env, ctx: Ctx) {
        if env.definite.contains(name) || self.config.predefined.contains(name) {
            return;
        }
        if env.maybe.contains(name) {
            if !ctx.in_proc {
                self.push(
                    ctx,
                    Diagnostic::warning(
                        "possibly-unset",
                        span,
                        format!("variable '{name}' may be unset here: it is assigned on only some paths"),
                    ),
                );
            }
            return;
        }
        // Procs read outer dynamic scopes, so a name assigned anywhere in the
        // script might be visible at call time; only never-assigned is certain.
        if ctx.in_proc && self.info.assigned.contains(name) {
            return;
        }
        let hint = if self.info.assigned.contains(name) {
            " (it is assigned only later or in another scope)"
        } else {
            ""
        };
        self.push(
            ctx,
            Diagnostic::error(
                "use-before-set",
                span,
                format!("variable '{name}' is used before it is set{hint}"),
            ),
        );
    }

    fn check_if(
        &mut self,
        args: &[Word],
        base: Span,
        span: Span,
        env: &mut Env,
        ctx: Ctx,
    ) -> CmdEffect {
        let mut i = 0;
        let mut branches: Vec<(Env, Exit)> = Vec::new();
        let mut has_else = false;
        let mut structure_ok = true;
        while i < args.len() {
            if i == 0 || args[i].static_text() == Some("elseif") {
                let off = usize::from(i != 0);
                let (Some(cond), Some(body)) = (args.get(i + off), args.get(i + off + 1)) else {
                    self.push(
                        ctx,
                        Diagnostic::error(
                            "wrong-arity",
                            span,
                            "'if' expects {cond} {body} with optional elseif/else clauses",
                        ),
                    );
                    structure_ok = false;
                    break;
                };
                if let WordKind::Braced(text) = &cond.kind {
                    self.scan_condition(text, map_span(base, content_base(cond)), env, ctx);
                }
                if let WordKind::Braced(text) = &body.kind {
                    let mut benv = env.clone();
                    let exit = self.check_script(
                        text,
                        map_span(base, content_base(body)),
                        &mut benv,
                        ctx.deeper(),
                    );
                    branches.push((benv, exit));
                } else {
                    structure_ok = false;
                }
                i += off + 2;
            } else if args[i].static_text() == Some("else") {
                has_else = true;
                let Some(body) = args.get(i + 1) else {
                    self.push(
                        ctx,
                        Diagnostic::error("wrong-arity", span, "'if': 'else' needs a {body}"),
                    );
                    structure_ok = false;
                    break;
                };
                if let WordKind::Braced(text) = &body.kind {
                    let mut benv = env.clone();
                    let exit = self.check_script(
                        text,
                        map_span(base, content_base(body)),
                        &mut benv,
                        ctx.deeper(),
                    );
                    branches.push((benv, exit));
                } else {
                    structure_ok = false;
                }
                break;
            } else {
                if let Some(word) = args[i].static_text() {
                    self.push(
                        ctx,
                        Diagnostic::error(
                            "wrong-arity",
                            span,
                            format!("'if': expected 'elseif' or 'else', got '{word}'"),
                        ),
                    );
                }
                structure_ok = false;
                break;
            }
        }
        // Join: assignments on terminated branches never reach the code after
        // the `if`, so only falling branches contribute.
        let falling: Vec<&Env> = branches
            .iter()
            .filter(|(_, exit)| *exit == Exit::Falls)
            .map(|(benv, _)| benv)
            .collect();
        for benv in &falling {
            env.merge_maybe(benv);
        }
        if structure_ok && has_else && !branches.is_empty() {
            if falling.is_empty() {
                return CmdEffect::terminal("if");
            }
            let mut definite = falling[0].definite.clone();
            for benv in &falling[1..] {
                definite = definite.intersection(&benv.definite).cloned().collect();
            }
            env.definite = definite;
        }
        CmdEffect::NONE
    }

    fn check_while(&mut self, args: &[Word], base: Span, span: Span, env: &mut Env, ctx: Ctx) {
        let (cond, body) = (&args[0], &args[1]);
        if let WordKind::Braced(text) = &cond.kind {
            self.scan_condition(text, map_span(base, content_base(cond)), env, ctx);
        }
        if let WordKind::Braced(body_text) = &body.kind {
            // The body may run zero times: its assignments are only maybes.
            let mut benv = env.clone();
            self.check_script(
                body_text,
                map_span(base, content_base(body)),
                &mut benv,
                ctx.deeper(),
            );
            env.merge_maybe(&benv);
            if let Some(cond_text) = cond.static_text() {
                self.check_loop_exit(cond_text, body_text, span, ctx);
            }
        }
    }

    /// The "no induction variable touched" heuristic: a loop whose condition
    /// is static (no `[...]`) and whose body neither updates any condition
    /// variable nor can escape (`break`/`return`/`halt`/`error`) will spin
    /// until the step budget kills it.
    fn check_loop_exit(&mut self, cond: &str, body: &str, span: Span, ctx: Ctx) {
        if cond.contains('[') {
            return; // condition consults a command: dynamic, assume fine
        }
        let vars = cond_var_names(cond);
        if vars.is_empty() {
            // Constant condition: fine if it is falsy (zero-trip) or does not
            // evaluate (the interpreter reports that loudly at runtime).
            match eval_expr(cond) {
                Ok(v) if is_truthy(&v) => {}
                _ => return,
            }
        }
        if !body_can_exit(body, &vars, 0, true, true) {
            let why = if vars.is_empty() {
                "the condition is constant-true and the body cannot break out".to_string()
            } else {
                format!(
                    "the body never updates any condition variable ({}) and cannot break out",
                    vars.iter().cloned().collect::<Vec<_>>().join(", ")
                )
            };
            self.push(
                ctx,
                Diagnostic::warning(
                    "no-loop-exit",
                    span,
                    format!("loop has no reachable exit: {why}; it will exhaust the step budget"),
                ),
            );
        }
    }

    fn check_foreach(&mut self, args: &[Word], base: Span, env: &mut Env, ctx: Ctx) {
        let var = args[0].static_text();
        if let WordKind::Braced(body_text) = &args[2].kind {
            let mut benv = env.clone();
            if let Some(var) = var {
                benv.assign(var); // bound on every body iteration
            }
            self.check_script(
                body_text,
                map_span(base, content_base(&args[2])),
                &mut benv,
                ctx.deeper(),
            );
            env.merge_maybe(&benv); // zero-trip possible: maybes only
        } else if let Some(var) = var {
            // Opaque body; the loop variable still may have been bound.
            let mut benv = env.clone();
            benv.assign(var);
            env.merge_maybe(&benv);
        }
    }

    fn check_proc(&mut self, args: &[Word], base: Span, ctx: Ctx) {
        let (Some(params), WordKind::Braced(body)) = (args[1].static_text(), &args[2].kind) else {
            return;
        };
        let mut penv = Env::default();
        for p in parse_list(params) {
            penv.assign(&p);
        }
        let pctx = Ctx {
            in_proc: true,
            ..ctx.deeper()
        };
        let mut env = penv;
        self.check_script(body, map_span(base, content_base(&args[2])), &mut env, pctx);
    }

    fn check_catch(&mut self, args: &[Word], base: Span, env: &mut Env, ctx: Ctx) {
        if let WordKind::Braced(body) = &args[0].kind {
            let mut benv = env.clone();
            let cctx = Ctx {
                in_catch: true,
                ..ctx.deeper()
            };
            self.check_script(
                body,
                map_span(base, content_base(&args[0])),
                &mut benv,
                cctx,
            );
            env.merge_maybe(&benv); // the body may have failed part-way
        }
        if let Some(var) = args.get(1).and_then(Word::static_text) {
            env.assign(var); // the result variable is set on success and error
        }
    }

    fn check_string(&mut self, args: &[Word], span: Span, ctx: Ctx) {
        let Some(op) = args[0].static_text() else {
            return;
        };
        let want = match op {
            "length" | "toupper" | "tolower" | "trim" => 2,
            "equal" | "first" => 3,
            "range" => 4,
            _ => {
                self.push(
                    ctx,
                    Diagnostic::error(
                        "unknown-command",
                        span,
                        format!("unknown 'string' subcommand '{op}'"),
                    ),
                );
                return;
            }
        };
        if args.len() != want {
            self.push(
                ctx,
                Diagnostic::error(
                    "wrong-arity",
                    span,
                    format!(
                        "'string {op}' expects {} argument(s) after the subcommand, got {}",
                        want - 1,
                        args.len() - 1
                    ),
                ),
            );
        }
    }

    /// Scans brace-quoted condition text the way the interpreter's
    /// `substitute` does: `$name` / `${name}` are variable reads, `[...]` is
    /// an embedded script evaluated in the same scope.
    fn scan_condition(&mut self, text: &str, base: Span, env: &mut Env, ctx: Ctx) {
        let chars: Vec<char> = text.chars().collect();
        let mut i = 0;
        let mut line = 1u32;
        let mut col = 1u32;
        let step = |c: char, line: &mut u32, col: &mut u32| {
            if c == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        };
        while i < chars.len() {
            match chars[i] {
                '$' => {
                    let vspan = map_span(base, Span::new(line, col));
                    step(chars[i], &mut line, &mut col);
                    i += 1;
                    let mut name = String::new();
                    if i < chars.len() && chars[i] == '{' {
                        step(chars[i], &mut line, &mut col);
                        i += 1;
                        while i < chars.len() && chars[i] != '}' {
                            name.push(chars[i]);
                            step(chars[i], &mut line, &mut col);
                            i += 1;
                        }
                        if i < chars.len() {
                            step(chars[i], &mut line, &mut col);
                            i += 1;
                        }
                    } else {
                        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                            name.push(chars[i]);
                            step(chars[i], &mut line, &mut col);
                            i += 1;
                        }
                    }
                    if !name.is_empty() {
                        self.check_var(&name, vspan, env, ctx);
                    }
                }
                '[' => {
                    step(chars[i], &mut line, &mut col);
                    i += 1;
                    let sspan = map_span(base, Span::new(line, col));
                    let mut depth = 1;
                    let mut inner = String::new();
                    while i < chars.len() && depth > 0 {
                        match chars[i] {
                            '[' => {
                                depth += 1;
                                inner.push('[');
                            }
                            ']' => {
                                depth -= 1;
                                if depth > 0 {
                                    inner.push(']');
                                }
                            }
                            c => inner.push(c),
                        }
                        step(chars[i], &mut line, &mut col);
                        i += 1;
                    }
                    self.check_script(&inner, sspan, env, ctx.deeper());
                }
                c => {
                    step(c, &mut line, &mut col);
                    i += 1;
                }
            }
        }
    }

    fn suggest(&self, name: &str) -> Option<String> {
        if name.len() > 30 {
            return None;
        }
        let mut best: Option<(usize, &str)> = None;
        for cand in crate::builtins::BUILTINS
            .iter()
            .map(|spec| spec.name)
            .chain(self.info.procs.keys().map(String::as_str))
        {
            let d = levenshtein(name, cand);
            if d <= 2 && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, cand));
            }
        }
        best.map(|(_, c)| c.to_string())
    }
}

fn arity_msg(name: &str, min: usize, max: Option<usize>, got: usize) -> String {
    let expected = match max {
        Some(m) if m == min => format!("{min}"),
        Some(m) => format!("{min} to {m}"),
        None => format!("at least {min}"),
    };
    format!("wrong number of arguments to '{name}': expected {expected}, got {got}")
}

/// All `$name` / `${name}` variable names mentioned in condition text.
pub(crate) fn cond_var_names(text: &str) -> BTreeSet<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '$' {
            i += 1;
            let mut name = String::new();
            if i < chars.len() && chars[i] == '{' {
                i += 1;
                while i < chars.len() && chars[i] != '}' {
                    name.push(chars[i]);
                    i += 1;
                }
                i += 1;
            } else {
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    name.push(chars[i]);
                    i += 1;
                }
            }
            if !name.is_empty() {
                out.insert(name);
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Whether a loop body can possibly terminate the loop: by updating one of
/// the condition's variables, or by escaping.  `break_ok` is false inside
/// nested loops (their `break` stays inside); `raise_ok` is false inside
/// `catch` and substitutions (`return`/`error` are absorbed there; only
/// `halt` always escapes).  Anything opaque returns `true` (conservative).
pub(crate) fn body_can_exit(
    src: &str,
    vars: &BTreeSet<String>,
    depth: u32,
    break_ok: bool,
    raise_ok: bool,
) -> bool {
    if depth > MAX_DEPTH {
        return true;
    }
    let Ok(cmds) = parse_script(src) else {
        return true; // parse error is reported elsewhere; don't double up
    };
    for cmd in &cmds {
        // Substitutions anywhere in the command can assign condition vars.
        for word in &cmd.words {
            if let WordKind::Parts(parts) = &word.kind {
                for part in parts {
                    if let WordPart::Command(inner) = part {
                        if body_can_exit(inner, vars, depth + 1, false, false) {
                            return true;
                        }
                    }
                }
            }
        }
        let Some(name) = cmd.words[0].static_text() else {
            return true; // computed command: could be anything
        };
        let args = &cmd.words[1..];
        let static_arg = |i: usize| args.get(i).and_then(Word::static_text);
        let braced_arg = |i: usize| {
            args.get(i).and_then(|w| match &w.kind {
                WordKind::Braced(t) => Some(t.as_str()),
                WordKind::Parts(_) => None,
            })
        };
        match name {
            "halt" => return true,
            "break" if break_ok => return true,
            "return" | "error" if raise_ok => return true,
            "eval" => return true, // built scripts are opaque
            "set" | "incr" | "append" | "lappend" | "unset" => match static_arg(0) {
                Some(var) => {
                    if vars.contains(var) {
                        return true;
                    }
                }
                None => return true, // computed variable name
            },
            "foreach" => {
                if static_arg(0).is_some_and(|v| vars.contains(v)) {
                    return true;
                }
                if let Some(body) = braced_arg(2) {
                    if body_can_exit(body, vars, depth + 1, false, raise_ok) {
                        return true;
                    }
                }
            }
            "while" => {
                if let Some(cond) = braced_arg(0) {
                    if cond.contains('[') && body_can_exit(cond, vars, depth + 1, false, false) {
                        return true;
                    }
                }
                if let Some(body) = braced_arg(1) {
                    if body_can_exit(body, vars, depth + 1, false, raise_ok) {
                        return true;
                    }
                }
            }
            "if" => {
                for (i, _) in args.iter().enumerate() {
                    if let Some(text) = braced_arg(i) {
                        if body_can_exit(text, vars, depth + 1, break_ok, raise_ok) {
                            return true;
                        }
                    }
                }
            }
            "catch" => {
                if static_arg(1).is_some_and(|v| vars.contains(v)) {
                    return true;
                }
                if let Some(body) = braced_arg(0) {
                    // Inside catch only `halt` escapes and assignments count.
                    if body_can_exit(body, vars, depth + 1, false, false) {
                        return true;
                    }
                }
            }
            "proc" => {} // defining a proc does nothing by itself
            _ => {}
        }
    }
    false
}

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;

    fn vet(src: &str) -> Vec<Diagnostic> {
        analyze_with(
            src,
            &AnalysisConfig::new().known_agents(["rexec", "courier", "diffusion", "ag_tac"]),
        )
    }

    fn codes(src: &str) -> Vec<&'static str> {
        vet(src).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_scripts_produce_no_diagnostics() {
        // The migration idiom every example agent uses.
        let hop = r#"
            bc_push DATA "from [my_site]"
            set next [bc_dequeue ITINERARY]
            if {$next ne ""} {
                bc_push CODE [bc_peek ORIGCODE]
                bc_put HOST $next
                bc_put CONTACT ag_tac
                meet rexec
            } else {
                foreach d [bc_list DATA] { cab_append shared RESULTS $d }
            }
        "#;
        assert_eq!(vet(hop), vec![]);
        // Conditions, procs, loops with real induction variables.
        let busy = r#"
            proc double {x} { return [expr $x * 2] }
            set i 0
            set sum 0
            while {$i < 10} {
                incr i
                if {$i == 3} { continue }
                set sum [expr $sum + [double $i]]
            }
            if {[my_site] == 1} { move_to 2 } else { cab_append t DONE $sum }
        "#;
        assert_eq!(vet(busy), vec![]);
    }

    #[test]
    fn unknown_commands_are_flagged_with_suggestions() {
        let diags = vet("set x 1\nfrobnicate $x");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "unknown-command");
        assert_eq!(diags[0].span, Span::new(2, 1));
        // A near-miss of a builtin gets a suggestion.
        let diags = vet("bc_psh F 1");
        assert!(diags[0].message.contains("did you mean 'bc_push'"));
    }

    #[test]
    fn wrong_arity_for_builtins_and_procs() {
        assert_eq!(codes("bc_put ONLYONE"), vec!["wrong-arity"]);
        assert_eq!(codes("my_site extra"), vec!["wrong-arity"]);
        assert_eq!(codes("string frobnicate x"), vec!["unknown-command"]);
        assert_eq!(codes("string equal a"), vec!["wrong-arity"]);
        let diags = vet("proc f {a b} { expr $a + $b }\nf 1");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "wrong-arity");
        assert!(diags[0].message.contains("proc 'f' expects 2"));
    }

    #[test]
    fn use_before_set_with_branch_joins() {
        // Never assigned: error ('y' itself is also never read, which the
        // unused-variable pass reports alongside).
        let diags = vet("set y $x");
        assert_eq!(codes_of(&diags), vec!["unused-variable", "use-before-set"]);
        assert!(diags[1].is_error());
        // Assigned later: still an error at the use site.
        assert_eq!(
            codes("set y $x\nset x 1"),
            vec!["unused-variable", "use-before-set"]
        );
        // Assigned on only one branch: warning.
        let diags = vet("set a 1\nif {$a} { set b 1 }\nputs $b");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "possibly-unset");
        assert!(!diags[0].is_error());
        // Assigned on every branch: clean.
        assert_eq!(
            vet("set a 1\nif {$a} { set b 1 } else { set b 2 }\nputs $b"),
            vec![]
        );
        // A branch that returns does not poison the join.
        assert_eq!(
            vet("set a 1\nif {$a} { return } else { set b 2 }\nputs $b"),
            vec![]
        );
        // While bodies may run zero times.
        let diags = vet("set i 0\nwhile {$i < 3} { incr i; set b 1 }\nputs $b");
        assert_eq!(codes_of(&diags), vec!["possibly-unset"]);
        // Condition text and substitutions are scanned too.
        assert_eq!(
            codes("if {$nope} { set x 1 }"),
            vec!["use-before-set", "unused-variable"]
        );
        assert_eq!(codes("puts [expr $nope + 1]"), vec!["use-before-set"]);
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn unreachable_and_after_move_to() {
        let diags = vet("return done\nputs after");
        assert_eq!(codes_of(&diags), vec!["unreachable"]);
        assert_eq!(codes("error boom\nputs after"), vec!["unreachable"]);
        // move_to followed by return is the universal idiom: clean.
        assert_eq!(vet("move_to 1\nreturn moving"), vec![]);
        // Anything else after move_to draws a warning.
        let diags = vet("move_to 1\nbc_put X 1");
        assert_eq!(codes_of(&diags), vec!["after-move-to"]);
        // Both branches returning makes the tail unreachable.
        assert_eq!(
            codes("set a 1\nif {$a} { return x } else { return y }\nputs tail"),
            vec!["unreachable"]
        );
    }

    #[test]
    fn meet_targets_are_checked_only_with_a_known_set() {
        assert_eq!(codes("meet nonsuch"), vec!["unknown-agent"]);
        assert_eq!(vet("meet rexec"), vec![]);
        // Dynamic targets are not checked.
        assert_eq!(vet("set a rexec\nmeet $a"), vec![]);
        // Without a known-agent set the check is off entirely.
        assert_eq!(analyze("meet nonsuch"), vec![]);
    }

    #[test]
    fn loops_with_no_reachable_exit_warn() {
        assert_eq!(
            codes("while {1} { set x 1 }"),
            vec!["no-loop-exit", "unused-variable"]
        );
        // The condition variable is never touched in the body.
        assert_eq!(
            codes("set i 0\nwhile {$i < 3} { bc_push F $i }"),
            vec!["no-loop-exit"]
        );
        // Updating the induction variable, breaking, or a dynamic condition
        // all count as exits.
        assert_eq!(vet("set i 0\nwhile {$i < 3} { incr i }"), vec![]);
        assert_eq!(vet("while {1} { if {[my_site]} { break } }"), vec![]);
        assert_eq!(vet("while {[bc_size Q] > 0} { bc_pop Q }"), vec![]);
        // halt escapes even from inside catch.
        assert_eq!(vet("while {1} { catch { halt done } }"), vec![]);
        // break inside a nested loop does not exit the outer loop.
        assert_eq!(
            codes("while {1} { foreach x {1 2} { break } }"),
            vec!["no-loop-exit"]
        );
        // Constant-false conditions are zero-trip, not infinite.
        assert_eq!(vet("while {0} { puts idle }"), vec![]);
    }

    #[test]
    fn catch_bodies_are_exempt() {
        assert_eq!(vet("catch { frobnicate $nope }"), vec![]);
        assert_eq!(vet("catch { meet ghost }"), vec![]);
        // The result variable counts as assigned afterwards.
        assert_eq!(vet("catch { error boom } msg\nputs $msg"), vec![]);
    }

    #[test]
    fn procs_may_read_outer_dynamic_scope() {
        // `g` is assigned somewhere in the script, so the proc body reading it
        // is legal under dynamic scoping; `never` is not assigned anywhere.
        assert_eq!(vet("set g 1\nproc f {} { return $g }\nf"), vec![]);
        let diags = vet("proc f {} { return $never }\nf");
        assert_eq!(codes_of(&diags), vec!["use-before-set"]);
    }

    #[test]
    fn predefined_variables_are_exempt() {
        let cfg = AnalysisConfig::new().predefined(["argv"]);
        assert_eq!(analyze_with("puts $argv", &cfg), vec![]);
        assert!(has_errors(&analyze("puts $argv")));
    }

    #[test]
    fn parse_errors_become_diagnostics() {
        let diags = analyze("set x 1\nset y {oops");
        assert_eq!(codes_of(&diags), vec!["parse"]);
        assert!(diags[0].is_error());
        assert_eq!(diags[0].span.line, 2);
    }

    #[test]
    fn spans_point_into_nested_bodies() {
        let src = "set a 1\nif {$a} {\n    frobnicate\n}";
        let diags = vet(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].span, Span::new(3, 5));
    }

    #[test]
    fn diagnostics_are_sorted_by_position() {
        let diags = vet("set y $x\nfrobnicate\nbc_put ONLY");
        let lines: Vec<u32> = diags.iter().map(|d| d.span.line).collect();
        // Line 1 carries two findings: unused-variable for 'y' at the
        // command, then use-before-set at the '$x' use site.
        assert_eq!(lines, vec![1, 1, 2, 3]);
        assert_eq!(
            codes_of(&diags),
            vec![
                "unused-variable",
                "use-before-set",
                "unknown-command",
                "wrong-arity"
            ]
        );
    }

    #[test]
    fn spans_point_into_doubly_nested_bodies() {
        // Composition of nested body offsets must stay absolute at depth 2+.
        let src = "set a 1\nif {$a} {\n    if {$a} {\n        frobnicate\n    }\n}";
        let diags = vet(src);
        assert_eq!(codes_of(&diags), vec!["unknown-command"]);
        assert_eq!(diags[0].span, Span::new(4, 9));
    }

    #[test]
    fn unused_variables_are_warned_conservatively() {
        // Plain assigned-never-read: warning, anchored at the assignment.
        let diags = vet("set ghost 42\nputs done");
        assert_eq!(codes_of(&diags), vec!["unused-variable"]);
        assert!(!diags[0].is_error());
        assert_eq!(diags[0].span, Span::new(1, 1));
        // Reads anywhere count: conditions, substitutions, nested bodies.
        assert_eq!(vet("set n 1\nwhile {$n < 3} { incr n }"), vec![]);
        assert_eq!(vet("set n 1\nputs [expr $n + 1]"), vec![]);
        assert_eq!(vet("set a 1\nif {$a} { puts $a }"), vec![]);
        // incr/append/lappend/unset count as reads of their target.
        assert_eq!(vet("set n 0\nincr n"), vec![]);
        assert_eq!(vet("set s a\nappend s b"), vec![]);
        assert_eq!(vet("set l {}\nlappend l x"), vec![]);
        // foreach loop variables and proc parameters are exempt.
        assert_eq!(vet("foreach x {1 2 3} { puts hop }"), vec![]);
        assert_eq!(vet("proc f {a b} { return $a }\nf 1 2"), vec![]);
        // catch result variables are exempt, and so are catch-body writes.
        assert_eq!(vet("catch { error boom } msg"), vec![]);
        assert_eq!(vet("catch { set tmp 1 }"), vec![]);
        // Any dynamic construct makes the pass stand down entirely.
        assert_eq!(
            vet("set ghost 42\nset name ghost\nputs [set $name]"),
            vec![]
        );
        assert_eq!(vet("set ghost 42\nset cmd {puts x}\neval $cmd"), vec![]);
        // A braced eval body is fully visible, so the pass stays active.
        assert_eq!(vet("set ghost 42\neval {puts $ghost}"), vec![]);
        // Writes in branches still warn when nothing ever reads them.
        let diags = vet("set a 1\nif {$a} { set dead 9 }");
        assert_eq!(codes_of(&diags), vec!["unused-variable"]);
        assert_eq!(diags[0].span, Span::new(2, 11));
    }

    #[test]
    fn vet_entry_point_renders_against_the_source_name() {
        let cfg = AnalysisConfig::new().source_name("mission.taco");
        let err = super::vet("bc_put ONLY", &cfg).unwrap_err();
        assert!(
            err.starts_with("mission.taco:1:1: error[wrong-arity]"),
            "{err}"
        );
        // Warnings alone do not fail the vet.
        assert!(super::vet("set ghost 1\nputs ok", &cfg).is_ok());
        // Default label preserved for embedded scripts without a name.
        let err = super::vet("bc_put ONLY", &AnalysisConfig::new()).unwrap_err();
        assert!(err.starts_with("<script>:1:1:"), "{err}");
    }
}
