//! A minimal directed-graph helper for the fleet audit.
//!
//! The audit composes per-script effect summaries into a *meet graph* (one
//! node per declared agent, one edge per literal `meet` target) and asks a
//! single structural question: which strongly connected components exist?
//! A component in which every member unconditionally meets back into the
//! component is a protocol livelock — the `meet-cycle-no-exit` diagnostic.
//!
//! The implementation is Kosaraju's algorithm with explicit stacks (no
//! recursion, so adversarially deep graphs cannot overflow the stack) and
//! fully deterministic output: components are returned with their members
//! sorted ascending and the components themselves ordered by smallest member.

/// A directed graph over nodes `0..n`.
#[derive(Debug, Clone)]
pub struct Digraph {
    adj: Vec<Vec<usize>>,
}

impl Digraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Digraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds the edge `from -> to`.  Parallel edges are tolerated (the SCC
    /// computation is insensitive to them).
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "edge endpoint out of range"
        );
        self.adj[from].push(to);
    }

    /// Whether the edge `from -> to` exists.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.adj.get(from).is_some_and(|v| v.contains(&to))
    }

    /// Strongly connected components, each sorted ascending, ordered by their
    /// smallest member.  Every node appears in exactly one component;
    /// singleton components are included (check [`Digraph::has_edge`] for a
    /// self-loop to distinguish a trivial singleton from a 1-cycle).
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.adj.len();
        // Pass 1: iterative DFS post-order on the forward graph.
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        for start in 0..n {
            if visited[start] {
                continue;
            }
            // Stack of (node, next-child index).
            let mut stack = vec![(start, 0usize)];
            visited[start] = true;
            while let Some(&(node, next)) = stack.last() {
                if next < self.adj[node].len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let child = self.adj[node][next];
                    if !visited[child] {
                        visited[child] = true;
                        stack.push((child, 0));
                    }
                } else {
                    order.push(node);
                    stack.pop();
                }
            }
        }
        // Pass 2: DFS on the transposed graph in reverse post-order.
        let mut radj = vec![Vec::new(); n];
        for (from, outs) in self.adj.iter().enumerate() {
            for &to in outs {
                radj[to].push(from);
            }
        }
        let mut component = vec![usize::MAX; n];
        let mut components: Vec<Vec<usize>> = Vec::new();
        for &start in order.iter().rev() {
            if component[start] != usize::MAX {
                continue;
            }
            let id = components.len();
            let mut members = vec![start];
            component[start] = id;
            let mut stack = vec![start];
            while let Some(node) = stack.pop() {
                for &prev in &radj[node] {
                    if component[prev] == usize::MAX {
                        component[prev] = id;
                        members.push(prev);
                        stack.push(prev);
                    }
                }
            }
            members.sort_unstable();
            components.push(members);
        }
        components.sort_by_key(|c| c[0]);
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_without_edges() {
        let g = Digraph::new(3);
        assert_eq!(g.sccs(), vec![vec![0], vec![1], vec![2]]);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert!(Digraph::new(0).is_empty());
    }

    #[test]
    fn a_simple_cycle_is_one_component() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3); // tail out of the cycle
        assert_eq!(g.sccs(), vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn self_loops_are_visible_via_has_edge() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 0);
        assert_eq!(g.sccs(), vec![vec![0], vec![1]]);
        assert!(g.has_edge(0, 0));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn two_disjoint_cycles() {
        let mut g = Digraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 2);
        assert_eq!(g.sccs(), vec![vec![0, 1], vec![2, 3, 4]]);
    }

    #[test]
    fn a_dag_has_only_singletons() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn deep_chains_do_not_overflow() {
        // 10k-node path plus a closing edge: one big cycle, no recursion.
        let n = 10_000;
        let mut g = Digraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g.add_edge(n - 1, 0);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), n);
    }
}
