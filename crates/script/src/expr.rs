//! The `expr` evaluator: arithmetic, comparison and logical expressions.
//!
//! TacoScript's `expr` command receives a fully substituted string and
//! evaluates it with ordinary precedence rules.  Numbers are `f64` internally
//! (printed without a decimal point when integral); string comparison is
//! available through `eq` and `ne`.
//!
//! Grammar (recursive descent, highest precedence last):
//!
//! ```text
//! expr     := or
//! or       := and    { "||" and }*
//! and      := equal  { "&&" equal }*
//! equal    := rel    { ("==" | "!=" | "eq" | "ne") rel }*
//! rel      := add    { ("<" | ">" | "<=" | ">=") add }*
//! add      := mul    { ("+" | "-") mul }*
//! mul      := unary  { ("*" | "/" | "%") unary }*
//! unary    := ("-" | "!")* primary
//! primary  := number | string | "(" expr ")"
//! ```

use crate::value::num_to_string;

/// Errors produced while evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprError(pub String);

impl std::fmt::Display for ExprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expr error: {}", self.0)
    }
}

impl std::error::Error for ExprError {}

/// A value during evaluation: a number or an uninterpreted string.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(f64),
    Str(String),
}

impl Val {
    fn as_num(&self) -> Result<f64, ExprError> {
        match self {
            Val::Num(n) => Ok(*n),
            Val::Str(s) => s
                .trim()
                .parse::<f64>()
                .map_err(|_| ExprError(format!("'{s}' is not a number"))),
        }
    }

    fn as_str(&self) -> String {
        match self {
            Val::Num(n) => num_to_string(*n),
            Val::Str(s) => s.clone(),
        }
    }

    fn truthy(&self) -> Result<bool, ExprError> {
        Ok(self.as_num()? != 0.0)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Str(String),
    Op(String),
    LParen,
    RParen,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, ExprError> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        match c {
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '0'..='9' | '.' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    s.push(chars[i]);
                    i += 1;
                }
                let n = s
                    .parse::<f64>()
                    .map_err(|_| ExprError(format!("bad number '{s}'")))?;
                toks.push(Tok::Num(n));
            }
            '"' | '\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                while i < chars.len() && chars[i] != quote {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(ExprError("unterminated string".into()));
                }
                i += 1;
                toks.push(Tok::Str(s));
            }
            '+' | '-' | '*' | '/' | '%' => {
                toks.push(Tok::Op(c.to_string()));
                i += 1;
            }
            '<' | '>' | '=' | '!' | '&' | '|' => {
                let mut op = c.to_string();
                if i + 1 < chars.len() {
                    let two: String = [c, chars[i + 1]].iter().collect();
                    if ["<=", ">=", "==", "!=", "&&", "||"].contains(&two.as_str()) {
                        op = two;
                        i += 1;
                    }
                }
                toks.push(Tok::Op(op));
                i += 1;
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                if s == "eq" || s == "ne" {
                    toks.push(Tok::Op(s));
                } else {
                    // Bare words evaluate as strings ("true"/"false" get numeric value).
                    toks.push(Tok::Str(s));
                }
            }
            _ => return Err(ExprError(format!("unexpected character '{c}'"))),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_op(&self, ops: &[&str]) -> Option<String> {
        if let Some(Tok::Op(op)) = self.peek() {
            if ops.contains(&op.as_str()) {
                return Some(op.clone());
            }
        }
        None
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expr(&mut self) -> Result<Val, ExprError> {
        self.or()
    }

    fn or(&mut self) -> Result<Val, ExprError> {
        let mut left = self.and()?;
        while self.peek_op(&["||"]).is_some() {
            self.bump();
            let right = self.and()?;
            let v = left.truthy()? || right.truthy()?;
            left = Val::Num(if v { 1.0 } else { 0.0 });
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Val, ExprError> {
        let mut left = self.equality()?;
        while self.peek_op(&["&&"]).is_some() {
            self.bump();
            let right = self.equality()?;
            let v = left.truthy()? && right.truthy()?;
            left = Val::Num(if v { 1.0 } else { 0.0 });
        }
        Ok(left)
    }

    fn equality(&mut self) -> Result<Val, ExprError> {
        let mut left = self.relational()?;
        while let Some(op) = self.peek_op(&["==", "!=", "eq", "ne"]) {
            self.bump();
            let right = self.relational()?;
            let result = match op.as_str() {
                "==" => left.as_num()? == right.as_num()?,
                "!=" => left.as_num()? != right.as_num()?,
                "eq" => left.as_str() == right.as_str(),
                "ne" => left.as_str() != right.as_str(),
                _ => unreachable!(),
            };
            left = Val::Num(if result { 1.0 } else { 0.0 });
        }
        Ok(left)
    }

    fn relational(&mut self) -> Result<Val, ExprError> {
        let mut left = self.additive()?;
        while let Some(op) = self.peek_op(&["<", ">", "<=", ">="]) {
            self.bump();
            let right = self.additive()?;
            let (l, r) = (left.as_num()?, right.as_num()?);
            let result = match op.as_str() {
                "<" => l < r,
                ">" => l > r,
                "<=" => l <= r,
                ">=" => l >= r,
                _ => unreachable!(),
            };
            left = Val::Num(if result { 1.0 } else { 0.0 });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Val, ExprError> {
        let mut left = self.multiplicative()?;
        while let Some(op) = self.peek_op(&["+", "-"]) {
            self.bump();
            let right = self.multiplicative()?;
            let (l, r) = (left.as_num()?, right.as_num()?);
            left = Val::Num(if op == "+" { l + r } else { l - r });
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Val, ExprError> {
        let mut left = self.unary()?;
        while let Some(op) = self.peek_op(&["*", "/", "%"]) {
            self.bump();
            let right = self.unary()?;
            let (l, r) = (left.as_num()?, right.as_num()?);
            left = match op.as_str() {
                "*" => Val::Num(l * r),
                "/" => {
                    if r == 0.0 {
                        return Err(ExprError("division by zero".into()));
                    }
                    Val::Num(l / r)
                }
                "%" => {
                    if r == 0.0 {
                        return Err(ExprError("modulo by zero".into()));
                    }
                    Val::Num((l as i64 % r as i64) as f64)
                }
                _ => unreachable!(),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Val, ExprError> {
        if let Some(op) = self.peek_op(&["-", "!"]) {
            self.bump();
            let v = self.unary()?;
            return Ok(match op.as_str() {
                "-" => Val::Num(-v.as_num()?),
                "!" => Val::Num(if v.truthy()? { 0.0 } else { 1.0 }),
                _ => unreachable!(),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Val, ExprError> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Val::Num(n)),
            Some(Tok::Str(s)) => Ok(Val::Str(s)),
            Some(Tok::LParen) => {
                let v = self.expr()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(v),
                    _ => Err(ExprError("expected ')'".into())),
                }
            }
            other => Err(ExprError(format!("unexpected token {other:?}"))),
        }
    }
}

/// Evaluates an expression string, returning the result as a string.
pub fn eval_expr(src: &str) -> Result<String, ExprError> {
    let toks = tokenize(src)?;
    if toks.is_empty() {
        return Err(ExprError("empty expression".into()));
    }
    let mut parser = Parser { toks, pos: 0 };
    let val = parser.expr()?;
    if parser.pos != parser.toks.len() {
        return Err(ExprError("trailing tokens in expression".into()));
    }
    Ok(val.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: &str) -> String {
        eval_expr(s).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(ev("1 + 2 * 3"), "7");
        assert_eq!(ev("(1 + 2) * 3"), "9");
        assert_eq!(ev("10 / 4"), "2.5");
        assert_eq!(ev("10 % 3"), "1");
        assert_eq!(ev("2 - 5"), "-3");
        assert_eq!(ev("-4 + 1"), "-3");
        assert_eq!(ev("1.5 + 1.25"), "2.75");
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("3 > 2"), "1");
        assert_eq!(ev("3 < 2"), "0");
        assert_eq!(ev("2 <= 2 && 3 >= 4"), "0");
        assert_eq!(ev("1 || 0"), "1");
        assert_eq!(ev("!1"), "0");
        assert_eq!(ev("!0 && 1"), "1");
        assert_eq!(ev("5 == 5.0"), "1");
        assert_eq!(ev("5 != 5"), "0");
    }

    #[test]
    fn string_comparison() {
        assert_eq!(ev("\"abc\" eq \"abc\""), "1");
        assert_eq!(ev("\"abc\" ne \"abd\""), "1");
        assert_eq!(ev("'site1' eq 'site2'"), "0");
        assert_eq!(ev("hello eq hello"), "1");
    }

    #[test]
    fn errors() {
        assert!(eval_expr("1 / 0").is_err());
        assert!(eval_expr("5 % 0").is_err());
        assert!(eval_expr("").is_err());
        assert!(eval_expr("1 +").is_err());
        assert!(eval_expr("(1 + 2").is_err());
        assert!(eval_expr("\"abc\" + 1").is_err());
        assert!(eval_expr("1 2").is_err());
        assert!(eval_expr("@").is_err());
        assert!(eval_expr("\"open").is_err());
    }

    #[test]
    fn integral_results_print_without_decimal() {
        assert_eq!(ev("4 / 2"), "2");
        assert_eq!(ev("2.5 * 2"), "5");
    }
}
