//! taco-audit: whole-fleet static analysis over TacoScript agents.
//!
//! taco-vet (PR 6) checks one script in isolation; the defects that actually
//! bite a TACOMA deployment are *inter-agent protocol* bugs — a folder read
//! that no counterpart ever writes, a meet cycle that never halts, an
//! itinerary into a site that does not exist.  This module lifts the analysis
//! to a declared fleet:
//!
//! 1. **Effect summaries** ([`summarize`]): a per-script abstraction of what
//!    the agent does to the shared world — folders read and written, cabinets
//!    touched, literal `meet` targets, literal `move_to`/`send_remote` sites,
//!    briefcase-growth operations inside loops, and whether any `halt` is
//!    present.  Extraction follows the taco-vet discipline: computed folder,
//!    cabinet or meet names and any `eval` make the summary *opaque*
//!    (the agent is then assumed to read and write everything), and `catch`
//!    bodies are exempt from opacity and flagging (failing inside `catch` is
//!    a supported idiom).
//! 2. **Fleet composition** ([`audit`]): summaries plus declared native
//!    agents, injected briefcase folders and declared deliverables are
//!    composed into writer/reader sets and a meet graph, yielding five coded
//!    diagnostics:
//!
//!    * **folder-never-produced** (error): a script reads a folder that no
//!      fleet agent writes and that is not injected;
//!    * **dead-folder-write** (warning): a script writes a folder nothing in
//!      the fleet (or the declared delivery set) ever reads;
//!    * **meet-cycle-no-exit** (error): a strongly connected component of the
//!      meet graph in which every member meets back into the component
//!      unconditionally and no member can halt;
//!    * **itinerary-out-of-range** (error): a literal `move_to`/`send_remote`
//!      site outside the declared site count;
//!    * **unbounded-growth** (warning): `bc_push`/`cab_append` inside a loop
//!      whose exit the dataflow cannot see.
//!
//! The soundness direction is the same as taco-vet's: **zero false
//! positives** on fleets that run cleanly.  Every approximation errs toward
//! silence — opaque agents become universal readers/writers (suppressing
//! folder findings), unknown native agents are universal, a meet counts as
//! *unconditional* only when it is reached before any branching or fallible
//! command at the top level of the script, and foreach loops (bounded by
//! their list) never trigger the growth check.  The price is deliberate
//! blindness: folder flow is fleet-global rather than per-meet-chain, and a
//! self-migration cycle re-armed through `ORIGCODE` is invisible to the meet
//! graph.  See DESIGN.md §6 for the full argument.

use crate::diag::Diagnostic;
use crate::expr::eval_expr;
use crate::parser::{parse_script, ParseError, Span, Word, WordKind, WordPart};
use crate::value::{as_int, is_truthy};
use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::{body_can_exit, cond_var_names};
use crate::graph::Digraph;

/// Nesting depth cap, mirroring the analyzer's.
const MAX_DEPTH: u32 = 64;

/// Folders the TACOMA kernel itself writes into briefcases (timer meets,
/// error reports, courier provenance): always considered produced.
const KERNEL_WRITTEN: &[&str] = &["TIMER", "ERROR", "ORIGIN"];

/// Wellknown system agents every site provides, and the folders the two
/// protocol-critical ones consume.  Everything else on this list is a
/// service whose behaviour is not worth modelling precisely: those are
/// treated as universal readers and writers (never the source of a finding,
/// always a consumer/producer of anything).  `tacoma-core` asserts its
/// `wellknown::AGENTS` slice stays within this list.
pub const WELLKNOWN_AGENTS: &[&str] = &[
    "ag_tac",
    "rexec",
    "courier",
    "diffusion",
    "broker",
    "monitor",
    "ticket",
    "mint",
    "court",
    "broker_guard",
];

/// The folders a wellknown agent reads, or `None` if the agent is modelled
/// as universal.
fn wellknown_reads(name: &str) -> Option<&'static [&'static str]> {
    match name {
        // ag_tac executes the CODE folder of whoever meets it.
        "ag_tac" => Some(&["CODE"]),
        // rexec ships CODE to the site in HOST addressed to CONTACT.
        "rexec" => Some(&["CODE", "HOST", "CONTACT"]),
        _ => None,
    }
}

// --- effect summaries --------------------------------------------------------

/// One literal `meet` edge out of a script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeetEdge {
    /// Where the first such `meet` appears.
    pub span: Span,
    /// True when at least one occurrence is reached unconditionally: at the
    /// top level, before any branching construct or fallible command.
    pub unconditional: bool,
}

/// One literal site reference (`move_to N` or `send_remote N ...`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRef {
    /// The literal site number.
    pub site: i64,
    /// Where the command appears.
    pub span: Span,
    /// `"move_to"` or `"send_remote"`.
    pub command: &'static str,
}

/// One growth operation inside a loop with no visible exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthSite {
    /// The folder (for `bc_push`) or cabinet (for `cab_append`) grown.
    pub target: String,
    /// Where the operation appears.
    pub span: Span,
    /// `"bc_push"` or `"cab_append"`.
    pub command: &'static str,
}

/// What one script does to the shared world, abstracted for fleet analysis.
#[derive(Debug, Clone, Default)]
pub struct EffectSummary {
    /// Folders read on the normal path (outside `catch` and `proc` bodies),
    /// with the first read site — these are *flaggable*.
    pub reads: BTreeMap<String, Span>,
    /// Folders written on the normal path, with the first write site.
    pub writes: BTreeMap<String, Span>,
    /// Every folder possibly read anywhere, including `catch`/`proc` bodies.
    pub reads_all: BTreeSet<String>,
    /// Every folder possibly written anywhere.
    pub writes_all: BTreeSet<String>,
    /// Cabinets touched by any `cab_*` command.
    pub cabinets: BTreeSet<String>,
    /// Literal `meet` targets.
    pub meets: BTreeMap<String, MeetEdge>,
    /// Literal `move_to`/`send_remote` site numbers.
    pub move_sites: Vec<SiteRef>,
    /// Growth operations inside loops with no visible exit.
    pub growth: Vec<GrowthSite>,
    /// Whether a `halt` appears anywhere (halt escapes every construct).
    pub halts: bool,
    /// A computed folder/cabinet/meet name, non-braced body, or `eval` was
    /// seen outside `catch`: the summary under-approximates and the agent
    /// must be treated as a universal reader/writer.
    pub opaque: bool,
}

/// Extracts the effect summary of one script.  Returns the parse error if
/// the script does not parse at all (nested bodies that fail to parse make
/// the summary opaque instead).
pub fn summarize(src: &str) -> Result<EffectSummary, ParseError> {
    parse_script(src)?;
    let mut out = EffectSummary::default();
    let ctx = WalkCtx {
        base: Span::START,
        depth: 0,
        conditional: false,
        in_catch: false,
        in_proc: false,
        in_unbounded_loop: false,
    };
    walk(src, ctx, &mut out);
    Ok(out)
}

#[derive(Debug, Clone, Copy)]
struct WalkCtx {
    base: Span,
    depth: u32,
    /// Inside any branch, loop body, catch or proc: effects still count, but
    /// meets are conditional.
    conditional: bool,
    /// Inside a `catch` body: dynamic constructs are exempt from opacity and
    /// effects are recorded only in the `_all` tiers.
    in_catch: bool,
    /// Inside a `proc` body: the proc may never be called, so effects are
    /// recorded only in the `_all` tiers.
    in_proc: bool,
    /// Inside a `while` whose exit the dataflow cannot see.
    in_unbounded_loop: bool,
}

impl WalkCtx {
    fn nested(self, base: Span) -> Self {
        WalkCtx {
            base,
            depth: self.depth + 1,
            conditional: true,
            ..self
        }
    }
}

/// Maps a span relative to an embedded script to an absolute span (same
/// convention as the analyzer's).
fn map_span(base: Span, rel: Span) -> Span {
    if rel.line == 1 {
        Span::new(base.line, base.col + rel.col - 1)
    } else {
        Span::new(base.line + rel.line - 1, rel.col)
    }
}

fn content_base(word: &Word) -> Span {
    Span::new(word.span.line, word.span.col + 1)
}

impl EffectSummary {
    fn read(&mut self, folder: &str, span: Span, ctx: WalkCtx) {
        self.reads_all.insert(folder.to_string());
        if !ctx.in_catch && !ctx.in_proc {
            self.reads.entry(folder.to_string()).or_insert(span);
        }
    }

    fn write(&mut self, folder: &str, span: Span, ctx: WalkCtx) {
        self.writes_all.insert(folder.to_string());
        if !ctx.in_catch && !ctx.in_proc {
            self.writes.entry(folder.to_string()).or_insert(span);
        }
    }

    /// Marks the summary opaque — unless the dynamic construct sits inside
    /// `catch`, which is exempt by convention.
    fn dynamic(&mut self, ctx: WalkCtx) {
        if !ctx.in_catch {
            self.opaque = true;
        }
    }
}

/// Commands that can neither raise nor branch (given fully static words):
/// a meet after a straight line of these is still unconditional.
fn infallible(name: &str) -> bool {
    matches!(
        name,
        "bc_put" | "bc_push" | "bc_del" | "cab_append" | "puts" | "log" | "set" | "list"
    )
}

#[allow(clippy::too_many_lines)]
fn walk(src: &str, ctx: WalkCtx, out: &mut EffectSummary) {
    if ctx.depth > MAX_DEPTH {
        out.dynamic(ctx);
        return;
    }
    let Ok(cmds) = parse_script(src) else {
        // A nested body that does not parse hides arbitrary effects.
        out.dynamic(ctx);
        return;
    };
    // True until a command that can branch, raise, or terminate is passed:
    // a meet reached while this holds runs on every execution of the script.
    let mut path_certain = !ctx.conditional;
    for cmd in &cmds {
        let span = map_span(ctx.base, cmd.span);
        // Substitutions run as part of word evaluation, in this context.
        for word in &cmd.words {
            if let WordKind::Parts(parts) = &word.kind {
                for part in parts {
                    if let WordPart::Command(script) = part {
                        let mut wctx = ctx;
                        wctx.base = map_span(ctx.base, word.span);
                        wctx.depth += 1;
                        wctx.conditional = ctx.conditional || !path_certain;
                        walk(script, wctx, out);
                    }
                }
            }
        }
        let Some(name) = cmd.words[0].static_text() else {
            out.dynamic(ctx);
            path_certain = false;
            continue;
        };
        let args = &cmd.words[1..];
        let static_arg = |i: usize| args.get(i).and_then(Word::static_text);
        let braced_arg = |i: usize| {
            args.get(i).and_then(|w| match &w.kind {
                WordKind::Braced(t) => Some((t.as_str(), map_span(ctx.base, content_base(w)))),
                WordKind::Parts(_) => None,
            })
        };
        match name {
            "bc_put" | "bc_push" => {
                match static_arg(0) {
                    Some(folder) => {
                        out.write(folder, span, ctx);
                        if name == "bc_push" && ctx.in_unbounded_loop && !ctx.in_catch {
                            out.growth.push(GrowthSite {
                                target: folder.to_string(),
                                span,
                                command: "bc_push",
                            });
                        }
                    }
                    None => out.dynamic(ctx),
                }
                path_certain = path_certain && all_words_static(cmd.words.as_slice());
            }
            "bc_pop" | "bc_dequeue" | "bc_peek" | "bc_list" | "bc_size" | "bc_del" => {
                match static_arg(0) {
                    Some(folder) => out.read(folder, span, ctx),
                    None => out.dynamic(ctx),
                }
                path_certain =
                    path_certain && name == "bc_del" && all_words_static(cmd.words.as_slice());
            }
            "cab_append" | "cab_contains" | "cab_list" | "cab_pop" => {
                match static_arg(0) {
                    Some(cabinet) => {
                        out.cabinets.insert(cabinet.to_string());
                        if name == "cab_append" && ctx.in_unbounded_loop && !ctx.in_catch {
                            out.growth.push(GrowthSite {
                                target: cabinet.to_string(),
                                span,
                                command: "cab_append",
                            });
                        }
                    }
                    None => out.dynamic(ctx),
                }
                path_certain =
                    path_certain && name == "cab_append" && all_words_static(cmd.words.as_slice());
            }
            "meet" => {
                match static_arg(0) {
                    Some(target) => {
                        let unconditional =
                            !ctx.conditional && !ctx.in_catch && !ctx.in_proc && path_certain;
                        let edge = out.meets.entry(target.to_string()).or_insert(MeetEdge {
                            span,
                            unconditional: false,
                        });
                        edge.unconditional |= unconditional;
                    }
                    None => out.dynamic(ctx),
                }
                path_certain = false; // a refused meet raises
            }
            "move_to" => {
                if let Some(site) = static_arg(0).and_then(as_int) {
                    out.move_sites.push(SiteRef {
                        site,
                        span,
                        command: "move_to",
                    });
                }
                path_certain = false;
            }
            "send_remote" => {
                if let Some(site) = static_arg(0).and_then(as_int) {
                    out.move_sites.push(SiteRef {
                        site,
                        span,
                        command: "send_remote",
                    });
                }
                // Shipped folders are read out of the briefcase.
                for (i, _) in args.iter().enumerate().skip(2) {
                    match static_arg(i) {
                        Some(folder) => out.read(folder, span, ctx),
                        None => out.dynamic(ctx),
                    }
                }
                path_certain = false;
            }
            "halt" => {
                out.halts = true;
                path_certain = false;
            }
            "return" | "error" | "break" | "continue" => path_certain = false,
            "while" => {
                match (braced_arg(0), braced_arg(1)) {
                    (Some((cond_text, cond_base)), Some((body_text, body_base))) => {
                        scan_brackets(cond_text, cond_base, ctx, out);
                        let unbounded = loop_exit_invisible(cond_text, body_text);
                        let mut bctx = ctx.nested(body_base);
                        bctx.in_unbounded_loop = ctx.in_unbounded_loop || unbounded;
                        walk(body_text, bctx, out);
                    }
                    _ => out.dynamic(ctx), // runtime-built condition or body
                }
                path_certain = false;
            }
            "foreach" => {
                // Bounded by its list: never an unbounded-growth site.
                match braced_arg(2) {
                    Some((body_text, body_base)) => walk(body_text, ctx.nested(body_base), out),
                    None if args.len() >= 3 => out.dynamic(ctx),
                    None => {}
                }
                path_certain = false;
            }
            "if" => {
                let mut i = 0;
                while i < args.len() {
                    if i == 0 || args[i].static_text() == Some("elseif") {
                        let off = usize::from(i != 0);
                        if let Some((cond_text, cond_base)) = braced_arg(i + off) {
                            scan_brackets(cond_text, cond_base, ctx, out);
                        }
                        match braced_arg(i + off + 1) {
                            Some((body_text, body_base)) => {
                                walk(body_text, ctx.nested(body_base), out);
                            }
                            None if args.get(i + off + 1).is_some() => out.dynamic(ctx),
                            None => {}
                        }
                        i += off + 2;
                    } else if args[i].static_text() == Some("else") {
                        match braced_arg(i + 1) {
                            Some((body_text, body_base)) => {
                                walk(body_text, ctx.nested(body_base), out);
                            }
                            None if args.get(i + 1).is_some() => out.dynamic(ctx),
                            None => {}
                        }
                        break;
                    } else {
                        break; // malformed: taco-vet reports wrong-arity
                    }
                }
                path_certain = false;
            }
            "catch" => {
                if let Some((body_text, body_base)) = braced_arg(0) {
                    let mut cctx = ctx.nested(body_base);
                    cctx.in_catch = true;
                    walk(body_text, cctx, out);
                }
                path_certain = false; // the body may have halted
            }
            "proc" => {
                match braced_arg(2) {
                    Some((body_text, body_base)) => {
                        let mut pctx = ctx.nested(body_base);
                        pctx.in_proc = true;
                        walk(body_text, pctx, out);
                    }
                    None if args.len() >= 3 => out.dynamic(ctx),
                    None => {}
                }
                // Defining a proc is pure: path_certain unchanged.
            }
            "eval" => {
                // Even a braced eval is a script chosen at runtime to be code;
                // the summary abstraction deliberately refuses to follow it.
                out.dynamic(ctx);
                path_certain = false;
            }
            "expr" => {
                if args.len() == 1 {
                    if let Some((text, base)) = braced_arg(0) {
                        scan_brackets(text, base, ctx, out);
                    }
                }
                path_certain = false;
            }
            other => {
                path_certain =
                    path_certain && infallible(other) && all_words_static(cmd.words.as_slice());
            }
        }
    }
}

fn all_words_static(words: &[Word]) -> bool {
    words.iter().all(|w| w.static_text().is_some())
}

/// Walks the `[...]` scripts embedded in brace-quoted condition/expr text —
/// `while {[bc_size Q] > 0}` reads folder `Q`.
fn scan_brackets(text: &str, base: Span, ctx: WalkCtx, out: &mut EffectSummary) {
    if ctx.depth > MAX_DEPTH {
        out.dynamic(ctx);
        return;
    }
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '[' {
            i += 1;
            col += 1;
            let sspan = map_span(base, Span::new(line, col));
            let mut nesting = 1;
            let mut inner = String::new();
            while i < chars.len() && nesting > 0 {
                match chars[i] {
                    '[' => {
                        nesting += 1;
                        inner.push('[');
                    }
                    ']' => {
                        nesting -= 1;
                        if nesting > 0 {
                            inner.push(']');
                        }
                    }
                    ch => inner.push(ch),
                }
                if chars[i] == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
            let mut sctx = ctx;
            sctx.base = sspan;
            sctx.depth += 1;
            walk(&inner, sctx, out);
        } else {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }
    }
}

/// Whether a `while` loop's exit is invisible to the dataflow: the condition
/// consults runtime state (`[...]`) with no visible escape in the body, or is
/// static but never influenced by the body.
fn loop_exit_invisible(cond: &str, body: &str) -> bool {
    if cond.contains('[') {
        // Exit depends on state the analysis cannot track; only an explicit
        // escape (halt/break/return/error) in the body bounds the loop.
        return !body_can_exit(body, &BTreeSet::new(), 0, true, true);
    }
    let vars = cond_var_names(cond);
    if vars.is_empty() {
        // Constant condition: falsy or non-evaluating conditions terminate
        // (loudly, in the latter case).
        match eval_expr(cond) {
            Ok(v) if is_truthy(&v) => !body_can_exit(body, &vars, 0, true, true),
            _ => false,
        }
    } else {
        !body_can_exit(body, &vars, 0, true, true)
    }
}

// --- fleet composition -------------------------------------------------------

/// One agent declared to the fleet audit.
#[derive(Debug, Clone)]
pub struct AgentSpec {
    /// The agent's meet name.
    pub name: String,
    /// The label findings about this agent render against (a file path, or a
    /// folder name like `CODE` for scripts in flight).
    pub source: String,
    /// The TacoScript source, or `None` for a native (Rust) agent.
    pub code: Option<String>,
}

/// A declared fleet: agents, site count, and the folder environment.
#[derive(Debug, Clone, Default)]
pub struct AuditConfig {
    agents: Vec<AgentSpec>,
    site_count: Option<u32>,
    injected: BTreeSet<String>,
    delivered: BTreeSet<String>,
}

impl AuditConfig {
    /// An empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a script agent (builder form).
    pub fn agent(
        mut self,
        name: impl Into<String>,
        source: impl Into<String>,
        code: impl Into<String>,
    ) -> Self {
        self.add_agent(name, source, code);
        self
    }

    /// Declares a script agent, replacing any previous agent of the same name.
    pub fn add_agent(
        &mut self,
        name: impl Into<String>,
        source: impl Into<String>,
        code: impl Into<String>,
    ) {
        let spec = AgentSpec {
            name: name.into(),
            source: source.into(),
            code: Some(code.into()),
        };
        self.agents.retain(|a| a.name != spec.name);
        self.agents.push(spec);
    }

    /// Declares a native (Rust) agent: a universal reader/writer unless it is
    /// one of the precisely modelled wellknown agents (builder form).
    pub fn native(mut self, name: impl Into<String>) -> Self {
        self.add_native(name);
        self
    }

    /// Declares a native agent.
    pub fn add_native(&mut self, name: impl Into<String>) {
        let name = name.into();
        let spec = AgentSpec {
            source: format!("<native {name}>"),
            name,
            code: None,
        };
        self.agents.retain(|a| a.name != spec.name);
        self.agents.push(spec);
    }

    /// Declares the number of sites, enabling the itinerary check (builder
    /// form).
    pub fn site_count(mut self, n: u32) -> Self {
        self.site_count = Some(n);
        self
    }

    /// Sets the site count in place (used by `tacoma-core`, which knows the
    /// topology at build time).
    pub fn set_site_count(&mut self, n: u32) {
        self.site_count = Some(n);
    }

    /// The declared site count, if any.
    pub fn declared_site_count(&self) -> Option<u32> {
        self.site_count
    }

    /// Declares a folder present in the injected briefcase (builder form).
    pub fn inject(mut self, folder: impl Into<String>) -> Self {
        self.add_injected(folder);
        self
    }

    /// Declares an injected folder.
    pub fn add_injected(&mut self, folder: impl Into<String>) {
        self.injected.insert(folder.into());
    }

    /// Declares a folder that is a deliverable: something outside the fleet
    /// (the experiment driver, a human) reads it, so writing it is not dead
    /// (builder form).
    pub fn deliver(mut self, folder: impl Into<String>) -> Self {
        self.add_delivered(folder);
        self
    }

    /// Declares a delivered folder.
    pub fn add_delivered(&mut self, folder: impl Into<String>) {
        self.delivered.insert(folder.into());
    }

    /// The declared agents, in declaration order.
    pub fn agents(&self) -> &[AgentSpec] {
        &self.agents
    }
}

/// One fleet-audit finding: a diagnostic anchored to the agent it is about.
#[derive(Debug, Clone)]
pub struct AuditFinding {
    /// The meet name of the agent the finding is about.
    pub agent: String,
    /// The source label findings render against.
    pub source: String,
    /// The finding itself.
    pub diag: Diagnostic,
}

struct Node {
    name: String,
    source: String,
    summary: Option<EffectSummary>,
    /// Universal reader/writer: opaque script, unknown native, or a
    /// wellknown service agent not modelled precisely.
    universal: bool,
    /// Folders a precisely modelled native reads.
    native_reads: &'static [&'static str],
    /// Native agents always survive their meetings.
    can_halt: bool,
}

/// Audits a declared fleet, returning findings sorted by source, position
/// and severity.  An empty result means the fleet composes cleanly.
#[allow(clippy::too_many_lines)]
pub fn audit(config: &AuditConfig) -> Vec<AuditFinding> {
    let mut findings: Vec<AuditFinding> = Vec::new();
    let mut nodes: Vec<Node> = Vec::new();
    for spec in &config.agents {
        match &spec.code {
            Some(code) => match summarize(code) {
                Ok(summary) => {
                    let universal = summary.opaque;
                    nodes.push(Node {
                        name: spec.name.clone(),
                        source: spec.source.clone(),
                        summary: Some(summary),
                        universal,
                        native_reads: &[],
                        can_halt: false,
                    });
                }
                Err(e) => {
                    findings.push(AuditFinding {
                        agent: spec.name.clone(),
                        source: spec.source.clone(),
                        diag: Diagnostic::error("parse", e.span(), e.message.clone()),
                    });
                    // An unparsable script never runs: it contributes nothing.
                }
            },
            None => nodes.push(native_node(&spec.name, &spec.source)),
        }
    }
    // Wellknown agents pulled in implicitly by literal meet targets.
    let declared: BTreeSet<String> = nodes.iter().map(|n| n.name.clone()).collect();
    let mut implicit: BTreeSet<&str> = BTreeSet::new();
    for node in &nodes {
        if let Some(summary) = &node.summary {
            for target in summary.meets.keys() {
                if !declared.contains(target) {
                    if let Some(&wk) = WELLKNOWN_AGENTS.iter().find(|&&a| a == target) {
                        implicit.insert(wk);
                    }
                }
            }
        }
    }
    for name in implicit {
        nodes.push(native_node(name, &format!("<wellknown {name}>")));
    }

    // Folder-flow composition.
    let mut writers: BTreeSet<&str> = config.injected.iter().map(String::as_str).collect();
    writers.extend(KERNEL_WRITTEN);
    let mut readers: BTreeSet<&str> = config.delivered.iter().map(String::as_str).collect();
    let mut universal_writer = false;
    let mut universal_reader = false;
    for node in &nodes {
        if node.universal {
            universal_writer = true;
            universal_reader = true;
        }
        readers.extend(node.native_reads);
        if let Some(summary) = &node.summary {
            writers.extend(summary.writes_all.iter().map(String::as_str));
            readers.extend(summary.reads_all.iter().map(String::as_str));
        }
    }

    // Per-script findings.
    for node in &nodes {
        let Some(summary) = &node.summary else {
            continue;
        };
        let push = |findings: &mut Vec<AuditFinding>, diag: Diagnostic| {
            findings.push(AuditFinding {
                agent: node.name.clone(),
                source: node.source.clone(),
                diag,
            });
        };
        if !summary.opaque {
            for (folder, span) in &summary.reads {
                if !universal_writer && !writers.contains(folder.as_str()) {
                    push(
                        &mut findings,
                        Diagnostic::error(
                            "folder-never-produced",
                            *span,
                            format!(
                                "folder '{folder}' is read but never produced: no fleet agent \
                                 writes it and it is not in the injected briefcase"
                            ),
                        ),
                    );
                }
            }
            for (folder, span) in &summary.writes {
                if !universal_reader && !readers.contains(folder.as_str()) {
                    push(
                        &mut findings,
                        Diagnostic::warning(
                            "dead-folder-write",
                            *span,
                            format!(
                                "folder '{folder}' is written but never read: no fleet agent, \
                                 wellknown consumer, or declared deliverable consumes it"
                            ),
                        ),
                    );
                }
            }
        }
        for site_ref in &summary.move_sites {
            let out_of_range = match config.site_count {
                Some(n) => site_ref.site < 0 || site_ref.site >= i64::from(n),
                None => site_ref.site < 0,
            };
            if out_of_range {
                let detail = match config.site_count {
                    Some(n) => format!("the fleet declares {n} site(s) (valid: 0..{})", n - 1),
                    None => "sites are non-negative".to_string(),
                };
                push(
                    &mut findings,
                    Diagnostic::error(
                        "itinerary-out-of-range",
                        site_ref.span,
                        format!(
                            "'{}' targets site {}, but {detail}",
                            site_ref.command, site_ref.site
                        ),
                    ),
                );
            }
        }
        for growth in &summary.growth {
            let kind = if growth.command == "bc_push" {
                "folder"
            } else {
                "cabinet"
            };
            push(
                &mut findings,
                Diagnostic::warning(
                    "unbounded-growth",
                    growth.span,
                    format!(
                        "'{}' into {kind} '{}' repeats inside a loop whose exit the analysis \
                         cannot see; it may grow without bound",
                        growth.command, growth.target
                    ),
                ),
            );
        }
    }

    // Meet-cycle analysis.
    let index: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.name.as_str(), i))
        .collect();
    let mut graph = Digraph::new(nodes.len());
    for (i, node) in nodes.iter().enumerate() {
        if let Some(summary) = &node.summary {
            for target in summary.meets.keys() {
                if let Some(&j) = index.get(target.as_str()) {
                    graph.add_edge(i, j);
                }
            }
        }
    }
    for scc in graph.sccs() {
        let cyclic = scc.len() > 1 || graph.has_edge(scc[0], scc[0]);
        if !cyclic {
            continue;
        }
        let members: BTreeSet<&str> = scc.iter().map(|&i| nodes[i].name.as_str()).collect();
        // Flag only when *every* member is a non-opaque script that cannot
        // halt and unconditionally meets back into the component.
        let doomed = scc.iter().all(|&i| {
            let node = &nodes[i];
            let Some(summary) = &node.summary else {
                return false; // native members can always exit
            };
            !summary.opaque
                && !summary.halts
                && !node.can_halt
                && summary
                    .meets
                    .iter()
                    .any(|(target, edge)| edge.unconditional && members.contains(target.as_str()))
        });
        if !doomed {
            continue;
        }
        // Anchor at the first member (by name) and its in-component meet.
        let &anchor = scc
            .iter()
            .min_by_key(|&&i| nodes[i].name.as_str())
            .expect("nonempty scc");
        let node = &nodes[anchor];
        let summary = node.summary.as_ref().expect("scripts only");
        let (_, edge) = summary
            .meets
            .iter()
            .find(|(target, edge)| edge.unconditional && members.contains(target.as_str()))
            .expect("doomed member has an unconditional in-component meet");
        let cycle: Vec<&str> = members.iter().copied().collect();
        findings.push(AuditFinding {
            agent: node.name.clone(),
            source: node.source.clone(),
            diag: Diagnostic::error(
                "meet-cycle-no-exit",
                edge.span,
                format!(
                    "meet cycle {{{}}} has no exit: every member meets back into the cycle \
                     unconditionally and none can halt",
                    cycle.join(" -> ")
                ),
            ),
        });
    }

    findings.sort_by(|a, b| {
        a.source
            .cmp(&b.source)
            .then(a.diag.span.cmp(&b.diag.span))
            .then(b.diag.severity.cmp(&a.diag.severity))
            .then(a.diag.code.cmp(b.diag.code))
    });
    findings
}

fn native_node(name: &str, source: &str) -> Node {
    let native_reads = wellknown_reads(name);
    Node {
        name: name.to_string(),
        source: source.to_string(),
        summary: None,
        universal: native_reads.is_none(),
        native_reads: native_reads.unwrap_or(&[]),
        can_halt: true,
    }
}

/// True when any finding is error-severity (the install gate's criterion).
pub fn audit_has_errors(findings: &[AuditFinding]) -> bool {
    findings.iter().any(|f| f.diag.is_error())
}

/// Renders findings one per line as `source:line:col: severity[code]: message`.
pub fn render_audit(findings: &[AuditFinding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.diag.render(&f.source));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(findings: &[AuditFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.diag.code).collect()
    }

    #[test]
    fn summaries_extract_folder_effects() {
        let s = summarize(
            "set hops [bc_pop HOPS]\nbc_put TALLY $hops\nbc_push TRAIL [my_site]\nhalt done",
        )
        .unwrap();
        assert!(s.reads.contains_key("HOPS"));
        assert!(s.writes.contains_key("TALLY"));
        assert!(s.writes.contains_key("TRAIL"));
        assert!(s.halts);
        assert!(!s.opaque);
        assert!(s.growth.is_empty());
    }

    #[test]
    fn summaries_see_reads_inside_braced_conditions() {
        let s = summarize("while {[bc_size Q] > 0} { bc_pop Q }\nreturn done").unwrap();
        assert!(s.reads.contains_key("Q"));
        // Draining is not growth.
        assert!(s.growth.is_empty());
    }

    #[test]
    fn computed_names_make_the_summary_opaque_except_in_catch() {
        let s = summarize("set f DATA\nbc_put $f 1").unwrap();
        assert!(s.opaque);
        let s = summarize("set f DATA\ncatch { bc_put $f 1 }").unwrap();
        assert!(!s.opaque);
        // Effects inside catch stay out of the flaggable tier.
        let s = summarize("catch { bc_put SAFE 1 }").unwrap();
        assert!(!s.writes.contains_key("SAFE"));
        assert!(s.writes_all.contains("SAFE"));
        // eval is opaque even when braced.
        assert!(summarize("eval {bc_put X 1}").unwrap().opaque);
    }

    #[test]
    fn meets_record_unconditional_reachability() {
        // A meet behind nothing but infallible commands is unconditional.
        let s = summarize("bc_put TRACE ping\nmeet pong").unwrap();
        assert!(s.meets["pong"].unconditional);
        // A meet inside a branch is not.
        let s = summarize("if {[my_site]} { meet pong }").unwrap();
        assert!(!s.meets["pong"].unconditional);
        // A meet after a fallible command is not.
        let s = summarize("set x [bc_pop F]\nmeet pong").unwrap();
        assert!(!s.meets["pong"].unconditional);
        // A meet inside catch is not (failure is absorbed).
        let s = summarize("catch { meet pong }").unwrap();
        assert!(!s.meets["pong"].unconditional);
    }

    #[test]
    fn growth_sites_require_an_invisible_exit() {
        // Dynamic condition, push in the body: flagged.
        let s = summarize("while {[bc_size Q] > 0} { bc_push Q [bc_pop Q] }").unwrap();
        assert_eq!(s.growth.len(), 1);
        assert_eq!(s.growth[0].target, "Q");
        assert_eq!(s.growth[0].command, "bc_push");
        // A visible escape bounds the loop.
        let s = summarize(
            "while {[bc_size Q] > 0} { bc_push OUT [bc_pop Q]\nif {[my_site]} { break } }",
        )
        .unwrap();
        assert!(s.growth.is_empty());
        // Induction variables bound static conditions.
        let s = summarize("set i 0\nwhile {$i < 3} { bc_push OUT $i\nincr i }").unwrap();
        assert!(s.growth.is_empty());
        // foreach is bounded by its list.
        let s = summarize("foreach x [bc_list IN] { cab_append shared OUT $x }").unwrap();
        assert!(s.growth.is_empty());
        // cab_append in a constant-true loop without escape: flagged.
        let s = summarize("while {1} { cab_append shared LOG tick }").unwrap();
        assert_eq!(s.growth.len(), 1);
        assert_eq!(s.growth[0].command, "cab_append");
    }

    #[test]
    fn folder_never_produced_and_its_suppressions() {
        let reader = "set v [bc_pop PLAN]\nbc_put ACK $v\nreturn ok";
        // Nobody writes PLAN: error.
        let cfg = AuditConfig::new()
            .agent("r", "r.taco", reader)
            .deliver("ACK");
        assert_eq!(codes(&audit(&cfg)), vec!["folder-never-produced"]);
        // Injection satisfies the read.
        let cfg = cfg.inject("PLAN");
        assert!(audit(&cfg).is_empty());
        // A fleet writer satisfies it too.
        let cfg = AuditConfig::new()
            .agent("r", "r.taco", reader)
            .agent("w", "w.taco", "bc_put PLAN route\nreturn ok")
            .deliver("ACK");
        assert!(audit(&cfg).is_empty());
        // An opaque agent could write anything: suppressed.
        let cfg = AuditConfig::new()
            .agent("r", "r.taco", reader)
            .agent("mystery", "m.taco", "set f X\nbc_put $f 1")
            .deliver("ACK");
        assert!(audit(&cfg).is_empty());
        // Kernel folders are always produced.
        let cfg = AuditConfig::new()
            .agent("r", "r.taco", "set e [bc_pop ERROR]\nbc_put ACK $e")
            .deliver("ACK");
        assert!(audit(&cfg).is_empty());
    }

    #[test]
    fn dead_folder_writes_and_their_suppressions() {
        let writer = "bc_put BEACON [my_site]\nreturn ok";
        let cfg = AuditConfig::new().agent("w", "w.taco", writer);
        assert_eq!(codes(&audit(&cfg)), vec!["dead-folder-write"]);
        assert!(!audit(&cfg)[0].diag.is_error());
        // A declared deliverable is read by the outside world.
        let cfg = AuditConfig::new()
            .agent("w", "w.taco", writer)
            .deliver("BEACON");
        assert!(audit(&cfg).is_empty());
        // A fleet reader consumes it.
        let cfg = AuditConfig::new().agent("w", "w.taco", writer).agent(
            "r",
            "r.taco",
            "set b [bc_pop BEACON]\nlog $b",
        );
        assert!(audit(&cfg).is_empty());
        // Writing HOST/CONTACT/CODE before meeting rexec is consumed by rexec.
        let mover = "bc_push CODE x\nbc_put HOST 1\nbc_put CONTACT ag_tac\nmeet rexec";
        let cfg = AuditConfig::new().agent("m", "m.taco", mover);
        assert!(audit(&cfg).is_empty());
    }

    #[test]
    fn itineraries_are_checked_against_the_site_count() {
        let cfg = AuditConfig::new()
            .site_count(4)
            .agent("h", "h.taco", "move_to 7\nreturn moving");
        let findings = audit(&cfg);
        assert_eq!(codes(&findings), vec!["itinerary-out-of-range"]);
        assert!(findings[0].diag.message.contains("site 7"));
        assert!(findings[0].diag.message.contains("valid: 0..3"));
        // In range: clean.
        let cfg = AuditConfig::new()
            .site_count(4)
            .agent("h", "h.taco", "move_to 3\nreturn moving");
        assert!(audit(&cfg).is_empty());
        // Without a declared count only negatives are wrong.
        let cfg = AuditConfig::new().agent("h", "h.taco", "move_to -1\nreturn moving");
        assert_eq!(codes(&audit(&cfg)), vec!["itinerary-out-of-range"]);
        // send_remote sites are checked the same way; its folders are reads.
        let cfg = AuditConfig::new().site_count(2).inject("DATA").agent(
            "s",
            "s.taco",
            "send_remote 5 ag_tac DATA\nreturn ok",
        );
        assert_eq!(codes(&audit(&cfg)), vec!["itinerary-out-of-range"]);
    }

    #[test]
    fn meet_cycles_without_exits_are_fatal() {
        let ping = "bc_put TRACE ping\nmeet pong";
        let pong = "bc_put TRACE pong\nmeet ping";
        let cfg = AuditConfig::new()
            .agent("ping", "ping.taco", ping)
            .agent("pong", "pong.taco", pong)
            .deliver("TRACE");
        let findings = audit(&cfg);
        assert_eq!(codes(&findings), vec!["meet-cycle-no-exit"]);
        assert!(findings[0].diag.message.contains("ping -> pong"));
        // One member halting breaks the livelock.
        let cfg = AuditConfig::new()
            .agent("ping", "ping.taco", ping)
            .agent(
                "pong",
                "pong.taco",
                "if {[bc_size TRACE] > 3} { halt done }\nmeet ping",
            )
            .deliver("TRACE")
            .inject("TRACE");
        assert!(audit(&cfg).is_empty());
        // A conditional meet is an exit.
        let cfg = AuditConfig::new()
            .agent("ping", "ping.taco", ping)
            .agent(
                "pong",
                "pong.taco",
                "if {[my_site]} { meet ping }\nreturn done",
            )
            .deliver("TRACE");
        assert!(audit(&cfg).is_empty());
        // A native member can always stop meeting back.
        let cfg = AuditConfig::new()
            .agent("ping", "ping.taco", "bc_put TRACE x\nmeet helper")
            .native("helper")
            .deliver("TRACE");
        assert!(audit(&cfg).is_empty());
        // Self-meets count as 1-cycles.
        let cfg = AuditConfig::new()
            .agent("narcissus", "n.taco", "meet narcissus")
            .deliver("TRACE");
        assert_eq!(codes(&audit(&cfg)), vec!["meet-cycle-no-exit"]);
    }

    #[test]
    fn parse_failures_become_parse_findings() {
        let cfg = AuditConfig::new().agent("b", "b.taco", "set x {unclosed");
        let findings = audit(&cfg);
        assert_eq!(codes(&findings), vec!["parse"]);
        assert!(findings[0].diag.is_error());
        assert_eq!(findings[0].source, "b.taco");
    }

    #[test]
    fn findings_render_like_vet_reports() {
        let cfg = AuditConfig::new()
            .site_count(2)
            .agent("h", "h.taco", "move_to 9\nreturn moving");
        let findings = audit(&cfg);
        assert!(audit_has_errors(&findings));
        let rendered = render_audit(&findings);
        assert!(
            rendered.starts_with("h.taco:1:1: error[itinerary-out-of-range]:"),
            "{rendered}"
        );
        assert!(render_audit(&[]).is_empty());
    }

    #[test]
    fn declaring_an_agent_twice_replaces_it() {
        let cfg = AuditConfig::new()
            .agent("a", "old.taco", "bc_put X 1")
            .agent("a", "new.taco", "bc_put Y 1\nreturn ok")
            .deliver("Y");
        assert!(audit(&cfg).is_empty());
        assert_eq!(cfg.agents().len(), 1);
        assert_eq!(cfg.agents()[0].source, "new.taco");
    }
}
