//! The single source of truth for TacoScript's builtin command surface.
//!
//! Both the interpreter ([`crate::interp::Interp`]) and the static analyzer
//! ([`crate::analysis`]) need to know which commands exist and how many
//! arguments each accepts.  PR 6 kept two hand-maintained copies of that
//! table and flagged the duplication as a latent bug — an entry changed in
//! one place but not the other would either reject scripts the interpreter
//! runs (a vet false positive, which `tacoma-core` turns into an install
//! failure) or let a real arity defect through.  This module is the one
//! table; a test in this file drives the interpreter over every entry to
//! prove the two can no longer drift.

/// The signature of one builtin command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltinSpec {
    /// The command name as written in scripts.
    pub name: &'static str,
    /// Minimum number of arguments (after the command name).
    pub min_args: usize,
    /// Maximum number of arguments, or `None` for variadic commands.
    pub max_args: Option<usize>,
    /// The usage string rendered in arity errors (`usage: <name> <usage>`).
    pub usage: &'static str,
}

impl BuiltinSpec {
    const fn new(
        name: &'static str,
        min_args: usize,
        max_args: Option<usize>,
        usage: &'static str,
    ) -> Self {
        BuiltinSpec {
            name,
            min_args,
            max_args,
            usage,
        }
    }

    /// Whether `argc` arguments violate this signature.
    pub fn arity_violated(&self, argc: usize) -> bool {
        argc < self.min_args || self.max_args.is_some_and(|m| argc > m)
    }
}

/// Every builtin the interpreter implements, in one place.
pub const BUILTINS: &[BuiltinSpec] = &[
    // --- variables & values --------------------------------------------------
    BuiltinSpec::new("set", 1, Some(2), "name ?value?"),
    BuiltinSpec::new("unset", 0, None, "?name ...?"),
    BuiltinSpec::new("incr", 1, Some(2), "name ?amount?"),
    BuiltinSpec::new("append", 1, None, "name ?value ...?"),
    BuiltinSpec::new("expr", 1, None, "arg ?arg ...?"),
    // --- control flow --------------------------------------------------------
    BuiltinSpec::new("if", 2, None, "{cond} {body} ..."),
    BuiltinSpec::new("while", 2, Some(2), "{cond} {body}"),
    BuiltinSpec::new("foreach", 3, Some(3), "var {list} {body}"),
    BuiltinSpec::new("proc", 3, Some(3), "name {params} {body}"),
    BuiltinSpec::new("return", 0, Some(1), "?value?"),
    BuiltinSpec::new("halt", 0, Some(1), "?value?"),
    BuiltinSpec::new("break", 0, Some(0), ""),
    BuiltinSpec::new("continue", 0, Some(0), ""),
    BuiltinSpec::new("eval", 1, None, "arg ?arg ...?"),
    BuiltinSpec::new("error", 1, None, "message ?detail ...?"),
    BuiltinSpec::new("catch", 1, Some(2), "{body} ?resultVar?"),
    // --- lists & strings -----------------------------------------------------
    BuiltinSpec::new("list", 0, None, "?value ...?"),
    BuiltinSpec::new("llength", 1, Some(1), "list"),
    BuiltinSpec::new("lindex", 2, Some(2), "list index"),
    BuiltinSpec::new("lappend", 1, None, "name ?value ...?"),
    BuiltinSpec::new("lrange", 3, Some(3), "list first last"),
    BuiltinSpec::new("concat", 0, None, "?list ...?"),
    BuiltinSpec::new("split", 1, Some(2), "string ?separator?"),
    BuiltinSpec::new("join", 1, Some(2), "list ?separator?"),
    BuiltinSpec::new(
        "string",
        2,
        Some(4),
        "length|toupper|tolower|trim|equal|first|range ...",
    ),
    // --- output --------------------------------------------------------------
    BuiltinSpec::new("puts", 1, None, "message ?message ...?"),
    BuiltinSpec::new("log", 1, None, "message ?message ...?"),
    // --- TACOMA briefcase ----------------------------------------------------
    BuiltinSpec::new("bc_put", 2, Some(2), "folder value"),
    BuiltinSpec::new("bc_push", 2, Some(2), "folder value"),
    BuiltinSpec::new("bc_pop", 1, Some(1), "folder"),
    BuiltinSpec::new("bc_dequeue", 1, Some(1), "folder"),
    BuiltinSpec::new("bc_peek", 1, Some(1), "folder"),
    BuiltinSpec::new("bc_list", 1, Some(1), "folder"),
    BuiltinSpec::new("bc_size", 1, Some(1), "folder"),
    BuiltinSpec::new("bc_del", 1, Some(1), "folder"),
    // --- TACOMA cabinets -----------------------------------------------------
    BuiltinSpec::new("cab_append", 3, Some(3), "cabinet folder value"),
    BuiltinSpec::new("cab_contains", 3, Some(3), "cabinet folder value"),
    BuiltinSpec::new("cab_list", 2, Some(2), "cabinet folder"),
    BuiltinSpec::new("cab_pop", 2, Some(2), "cabinet folder"),
    // --- TACOMA agents & migration -------------------------------------------
    BuiltinSpec::new("meet", 1, Some(1), "agent"),
    BuiltinSpec::new("move_to", 1, Some(2), "site ?contact?"),
    BuiltinSpec::new("send_remote", 2, None, "site contact ?folder ...?"),
    // --- TACOMA environment --------------------------------------------------
    BuiltinSpec::new("my_site", 0, Some(0), ""),
    BuiltinSpec::new("site_count", 0, Some(0), ""),
    BuiltinSpec::new("neighbors", 0, Some(0), ""),
    BuiltinSpec::new("random", 1, Some(1), "bound"),
    BuiltinSpec::new("now", 0, Some(0), ""),
];

/// Looks up a builtin's signature by command name.
pub fn builtin(name: &str) -> Option<&'static BuiltinSpec> {
    BUILTINS.iter().find(|spec| spec.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::RecordingHost;
    use crate::interp::{Interp, ScriptError};
    use std::collections::BTreeSet;

    #[test]
    fn table_has_no_duplicates() {
        let names: BTreeSet<&str> = BUILTINS.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), BUILTINS.len(), "duplicate builtin entries");
    }

    #[test]
    fn every_builtin_has_a_sane_signature() {
        for spec in BUILTINS {
            assert!(builtin(spec.name).is_some());
            if let Some(max) = spec.max_args {
                assert!(
                    spec.min_args <= max,
                    "builtin '{}' has min > max",
                    spec.name
                );
            }
        }
        assert!(builtin("frobnicate").is_none());
    }

    /// The anti-drift test the satellite asks for: the interpreter must agree
    /// with the table for every builtin.  Calling each command with one
    /// argument too few (or too many, for the bounded ones) must produce a
    /// `usage:` arity error — never `unknown command` (which would mean the
    /// interpreter lost the builtin) and never a clean run (which would mean
    /// the table is stricter than the interpreter).
    #[test]
    fn interpreter_enforces_the_shared_arities() {
        for spec in BUILTINS {
            let mut violations: Vec<usize> = Vec::new();
            if spec.min_args > 0 {
                violations.push(spec.min_args - 1);
            }
            if let Some(max) = spec.max_args {
                violations.push(max + 1);
            }
            for argc in violations {
                // Braced arguments keep placeholder values inert (no variable
                // substitution, no command execution).
                let src = format!("{}{}", spec.name, " {0}".repeat(argc));
                let mut host = RecordingHost::new();
                let mut interp = Interp::new(&mut host);
                let err = interp.run(&src).unwrap_err();
                let ScriptError::Runtime(msg) = &err else {
                    panic!("builtin '{}' with {argc} args: {err:?}", spec.name);
                };
                assert!(
                    msg.contains(&format!("usage: {}", spec.name)),
                    "builtin '{}' with {argc} args drifted from the table: {msg}",
                    spec.name
                );
            }
        }
    }
}
