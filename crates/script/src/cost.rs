//! Static worst-case cost bounds for TacoScript.
//!
//! `cost_bound` runs an abstract interpretation over the parsed AST and
//! returns a sound [`CostBound`]: intervals on interpreter steps, nesting
//! depth, and briefcase growth bytes. The analysis mirrors the interpreter's
//! accounting exactly (one step per command, one extra step per `while`
//! iteration, depth+1 for bodies / `[..]` substitution / proc calls) so the
//! upper bounds are safe to use as runtime budgets and the lower bounds are
//! safe to use for certain-death rejection.
//!
//! Degradation policy matches taco-vet/taco-audit's zero-false-positive
//! stance: `eval`, computed command names, computed proc bodies, recursion,
//! and loops whose trip count cannot be inferred all degrade to an unbounded
//! ("divergent") upper bound rather than guessing. `foreach` over a runtime
//! list with a bounded body is the one softer case: its step count is
//! input-bounded (finite for every finite input) but has no static upper
//! bound, which [`CostBound::verdict`] reports as `input-bound` rather than
//! `unbounded`.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{parse_script, Command, ParseError, Word, WordKind, WordPart};
use crate::value::parse_list;

/// Maximum analyzer recursion depth before the analysis gives up and
/// poisons the result. Mirrors the interpreter's default `max_depth`.
const ANALYSIS_DEPTH_LIMIT: u32 = 64;

/// A closed-below, optionally-open-above interval of `u64` cost.
///
/// `hi == None` means "no finite upper bound is proven".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostInterval {
    /// Proven lower bound (over successful, non-erroring executions).
    pub lo: u64,
    /// Proven upper bound over all executions, or `None` if unbounded.
    pub hi: Option<u64>,
}

impl CostInterval {
    /// The interval `[n, n]`.
    pub fn exact(n: u64) -> Self {
        CostInterval { lo: n, hi: Some(n) }
    }

    /// The interval `[0, 0]`.
    pub fn zero() -> Self {
        Self::exact(0)
    }

    /// The interval `[lo, ∞)`.
    pub fn at_least(lo: u64) -> Self {
        CostInterval { lo, hi: None }
    }

    /// Interval addition (sequential composition).
    // Not the `std::ops::Add` trait: interval arithmetic saturates, and the
    // free name keeps call sites (`a.add(b).add(c)`) chainable without an
    // operator-overload surface the rest of the crate never uses.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Self) -> Self {
        CostInterval {
            lo: self.lo.saturating_add(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            },
        }
    }

    /// Interval join (either branch may run): min of lows, max of highs.
    pub fn join(self, other: Self) -> Self {
        CostInterval {
            lo: self.lo.min(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Pointwise max (both bounds): used for depth under sequencing, where
    /// the depth of `a; b` is the max of the two depths.
    pub fn max_(self, other: Self) -> Self {
        CostInterval {
            lo: self.lo.max(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Multiply a per-iteration cost by an iteration-count interval.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, iters: Self) -> Self {
        CostInterval {
            lo: self.lo.saturating_mul(iters.lo),
            hi: match (self.hi, iters.hi) {
                // 0 iterations (or a provably-zero body) is finite even if
                // the other factor is unbounded.
                (Some(0), _) | (_, Some(0)) => Some(0),
                (Some(a), Some(b)) => Some(a.saturating_mul(b)),
                _ => None,
            },
        }
    }

    /// Render as `lo..hi`; unbounded highs render as `?` when `divergent`
    /// (control-unbounded) or `n` when merely input-bounded.
    pub fn render(&self, divergent: bool) -> String {
        match self.hi {
            Some(hi) => format!("{}..{}", self.lo, hi),
            None if divergent => format!("{}..?", self.lo),
            None => format!("{}..n", self.lo),
        }
    }
}

/// The result of static cost analysis for one script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostBound {
    /// Interpreter step count (the quantity charged against `max_steps`).
    pub steps: CostInterval,
    /// Maximum nesting depth passed to `eval_script` (top level is 0).
    pub depth: CostInterval,
    /// Bytes appended to the briefcase via growth ops (`bc_push`,
    /// `cab_append`).
    pub growth_bytes: CostInterval,
    /// True when the missing upper bound is *control*-unbounded (recursion,
    /// `eval`, computed dispatch, uninferable loop). False with
    /// `steps.hi == None` means input-bounded: finite for every finite
    /// runtime input, e.g. `foreach` over a runtime list.
    pub divergent: bool,
}

impl CostBound {
    /// Classify the bound: `bounded`, `input-bound`, or `unbounded`.
    pub fn verdict(&self) -> &'static str {
        if self.divergent {
            "unbounded"
        } else if self.steps.hi.is_some() {
            "bounded"
        } else {
            "input-bound"
        }
    }

    /// One-line rendering used by `taco-vet --cost` tables.
    pub fn summary(&self) -> String {
        format!(
            "steps {} depth {} growth {} [{}]",
            self.steps.render(self.divergent),
            self.depth.render(self.divergent),
            self.growth_bytes.render(self.divergent),
            self.verdict()
        )
    }
}

/// An install-time budget checked against a [`CostBound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostGate {
    /// Step budget the script must fit inside.
    pub max_steps: u64,
    /// Depth budget the script must fit inside.
    pub max_depth: u64,
    /// Strict gates also reject scripts without a proven finite bound
    /// within budget; lenient gates only reject certain death (proven
    /// lower bound above budget — zero false positives).
    pub strict: bool,
}

impl CostGate {
    /// A lenient gate: reject only scripts whose *lower* bound already
    /// exceeds the budget (they are guaranteed to die at runtime).
    pub fn lenient(max_steps: u64, max_depth: u64) -> Self {
        CostGate {
            max_steps,
            max_depth,
            strict: false,
        }
    }

    /// A strict gate: additionally reject scripts without a proven finite
    /// upper bound within the budget. Admitted ⇒ runtime cost ≤ budget.
    pub fn strict(max_steps: u64, max_depth: u64) -> Self {
        CostGate {
            max_steps,
            max_depth,
            strict: true,
        }
    }

    /// Check a bound against this gate. `Err` carries a human-readable
    /// rejection reason.
    pub fn check(&self, bound: &CostBound) -> Result<(), String> {
        if bound.steps.lo > self.max_steps {
            return Err(format!(
                "cost: proven lower bound {} steps exceeds budget {}",
                bound.steps.lo, self.max_steps
            ));
        }
        if bound.depth.lo > self.max_depth {
            return Err(format!(
                "cost: proven lower bound depth {} exceeds budget {}",
                bound.depth.lo, self.max_depth
            ));
        }
        if self.strict {
            match bound.steps.hi {
                Some(hi) if hi <= self.max_steps => {}
                Some(hi) => {
                    return Err(format!(
                        "cost: worst case {} steps exceeds budget {}",
                        hi, self.max_steps
                    ));
                }
                None => {
                    return Err(format!("cost: no finite step bound ({})", bound.verdict()));
                }
            }
            match bound.depth.hi {
                Some(hi) if hi <= self.max_depth => {}
                Some(hi) => {
                    return Err(format!(
                        "cost: worst case depth {} exceeds budget {}",
                        hi, self.max_depth
                    ));
                }
                None => {
                    return Err(format!("cost: no finite depth bound ({})", bound.verdict()));
                }
            }
        }
        Ok(())
    }
}

/// Compute the static cost bound for a script.
///
/// Fails only on parse errors; semantically opaque constructs degrade to
/// an unbounded interval instead of failing.
pub fn cost_bound(src: &str) -> Result<CostBound, ParseError> {
    let commands = parse_script(src)?;
    let mut analyzer = Analyzer::new();
    analyzer.collect_procs(&commands, 0);
    let cost = analyzer.script_cost(&commands, &mut Env::new(), 0);
    Ok(CostBound {
        steps: cost.steps,
        depth: cost.depth,
        growth_bytes: cost.growth,
        divergent: cost.divergent,
    })
}

/// Internal running cost: like `CostBound` but with combinators.
#[derive(Debug, Clone, Copy)]
struct Cost {
    steps: CostInterval,
    depth: CostInterval,
    growth: CostInterval,
    divergent: bool,
    /// True when this command definitely terminates the enclosing script
    /// on every successful path (`return`, `halt`, `break`, `continue`)
    /// or cannot complete normally (`error`). Sequencing stops adding
    /// lower bounds after such a command.
    terminates: bool,
}

impl Cost {
    fn zero() -> Self {
        Cost {
            steps: CostInterval::zero(),
            depth: CostInterval::zero(),
            growth: CostInterval::zero(),
            divergent: false,
            terminates: false,
        }
    }

    /// Fully unknown: everything `[0, ∞)` and control-unbounded.
    fn poison() -> Self {
        Cost {
            steps: CostInterval::at_least(0),
            depth: CostInterval::at_least(0),
            growth: CostInterval::at_least(0),
            divergent: true,
            terminates: false,
        }
    }

    /// Sequential composition: steps/growth add, depth maxes.
    fn seq(self, other: Self) -> Self {
        Cost {
            steps: self.steps.add(other.steps),
            depth: self.depth.max_(other.depth),
            growth: self.growth.add(other.growth),
            divergent: self.divergent || other.divergent,
            terminates: self.terminates || other.terminates,
        }
    }

    /// Branch join: either side may run.
    fn join(self, other: Self) -> Self {
        Cost {
            steps: self.steps.join(other.steps),
            depth: self.depth.join(other.depth),
            growth: self.growth.join(other.growth),
            divergent: self.divergent || other.divergent,
            terminates: self.terminates && other.terminates,
        }
    }

    /// May-not-execute: keep upper bounds, drop lower bounds.
    fn guard(self) -> Self {
        Cost {
            steps: CostInterval {
                lo: 0,
                hi: self.steps.hi,
            },
            depth: CostInterval {
                lo: 0,
                hi: self.depth.hi,
            },
            growth: CostInterval {
                lo: 0,
                hi: self.growth.hi,
            },
            divergent: self.divergent,
            terminates: false,
        }
    }

    /// Runs one nesting level deeper (script body, `[..]` part, proc call).
    fn deepen(self) -> Self {
        Cost {
            depth: self.depth.add(CostInterval::exact(1)),
            ..self
        }
    }

    fn add_steps(self, n: CostInterval) -> Self {
        Cost {
            steps: self.steps.add(n),
            ..self
        }
    }

    fn add_growth(self, n: CostInterval) -> Self {
        Cost {
            growth: self.growth.add(n),
            ..self
        }
    }
}

/// Exact-integer variable environment for constant propagation. A variable
/// is present only when its value is a statically known integer along every
/// path reaching the current point.
type Env = BTreeMap<String, i64>;

#[derive(Debug, Clone)]
enum ProcInfo {
    /// All known bodies for this proc name (re-definition joins them).
    Bodies(Vec<String>),
    /// A definition with a computed body: calling it is unanalyzable.
    Opaque,
}

struct Analyzer {
    procs: BTreeMap<String, ProcInfo>,
    /// Set when any `proc` definition has a computed *name*: then the set
    /// of callable procs is unknown and unknown commands must poison.
    opaque_procs: bool,
    /// Memoized summaries of proc bodies (by name).
    summaries: BTreeMap<String, Cost>,
    /// Names currently being summarized (cycle ⇒ recursion ⇒ poison).
    in_progress: Vec<String>,
}

impl Analyzer {
    fn new() -> Self {
        Analyzer {
            procs: BTreeMap::new(),
            opaque_procs: false,
            summaries: BTreeMap::new(),
            in_progress: Vec::new(),
        }
    }

    /// Pre-pass: structurally collect every `proc` definition reachable in
    /// the script, including ones nested in control-flow bodies and `[..]`
    /// parts.
    fn collect_procs(&mut self, commands: &[Command], adepth: u32) {
        if adepth > ANALYSIS_DEPTH_LIMIT {
            return;
        }
        for cmd in commands {
            for word in &cmd.words {
                if let WordKind::Parts(parts) = &word.kind {
                    for part in parts {
                        if let WordPart::Command(inner) = part {
                            if let Ok(inner_cmds) = parse_script(inner) {
                                self.collect_procs(&inner_cmds, adepth + 1);
                            }
                        }
                    }
                }
            }
            let name = match cmd.words.first().and_then(|w| w.static_text()) {
                Some(n) => n,
                None => continue,
            };
            match name {
                "proc" if cmd.words.len() == 4 => match cmd.words[1].static_text() {
                    Some(pname) => {
                        let pname = pname.to_string();
                        match cmd.words[3].static_text() {
                            Some(body) => {
                                let entry = self
                                    .procs
                                    .entry(pname)
                                    .or_insert_with(|| ProcInfo::Bodies(Vec::new()));
                                if let ProcInfo::Bodies(bodies) = entry {
                                    bodies.push(body.to_string());
                                }
                                if let Ok(body_cmds) = parse_script(body) {
                                    self.collect_procs(&body_cmds, adepth + 1);
                                }
                            }
                            None => {
                                self.procs.insert(pname, ProcInfo::Opaque);
                            }
                        }
                    }
                    None => self.opaque_procs = true,
                },
                "if" | "while" | "foreach" | "catch" | "eval" => {
                    // Recurse into any statically visible body text.
                    for word in cmd.words.iter().skip(1) {
                        if let Some(text) = word.static_text() {
                            if let Ok(inner) = parse_script(text) {
                                self.collect_procs(&inner, adepth + 1);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Summary cost of calling `name` (body cost only; the call's own step
    /// and word costs are charged at the call site).
    fn proc_summary(&mut self, name: &str, adepth: u32) -> Cost {
        if let Some(cost) = self.summaries.get(name) {
            return *cost;
        }
        if self.in_progress.iter().any(|n| n == name) {
            // Recursion: poison every member of the cycle.
            return Cost::poison();
        }
        let info = match self.procs.get(name) {
            Some(info) => info.clone(),
            None => return Cost::poison(),
        };
        let cost = match info {
            ProcInfo::Opaque => Cost::poison(),
            ProcInfo::Bodies(bodies) => {
                self.in_progress.push(name.to_string());
                let mut joined: Option<Cost> = None;
                for body in &bodies {
                    let body_cost = match parse_script(body) {
                        Ok(cmds) => {
                            // Proc bodies start with a fresh scope: no
                            // caller constants are visible.
                            self.script_cost(&cmds, &mut Env::new(), adepth + 1)
                        }
                        Err(_) => Cost::poison(),
                    };
                    joined = Some(match joined {
                        Some(j) => j.join(body_cost),
                        None => body_cost,
                    });
                }
                let mut cost = joined.unwrap_or_else(Cost::poison);
                // `return`/flow control inside the body does not terminate
                // the *caller's* script.
                cost.terminates = false;
                self.in_progress.pop();
                cost
            }
        };
        self.summaries.insert(name.to_string(), cost);
        cost
    }

    /// Cost of a command sequence (one `eval_script` body) at the current
    /// nesting level.
    fn script_cost(&mut self, commands: &[Command], env: &mut Env, adepth: u32) -> Cost {
        if adepth > ANALYSIS_DEPTH_LIMIT {
            return Cost::poison();
        }
        let mut total = Cost::zero();
        for cmd in commands {
            let c = self.command_cost(cmd, env, adepth);
            if total.terminates {
                // A flow-terminator already ran on every successful path:
                // later commands contribute no lower bound (and their upper
                // bound still matters only if the terminator was inside a
                // branch — handled by `terminates` propagation in join).
                total = total.seq(c.guard());
            } else {
                total = total.seq(c);
            }
        }
        total
    }

    /// Cost of one command: 1 step + word evaluation + dispatch.
    fn command_cost(&mut self, cmd: &Command, env: &mut Env, adepth: u32) -> Cost {
        let mut cost = Cost::zero().add_steps(CostInterval::exact(1));

        // Word evaluation: every word is evaluated before dispatch.
        // `[..]` parts run the inner script one level deeper.
        for word in &cmd.words {
            cost = cost.seq(self.word_cost(word, env, adepth));
        }

        let name = match cmd.words.first().and_then(|w| w.static_text()) {
            Some(n) => n.to_string(),
            None => {
                // Computed command name: anything may run.
                env.clear();
                return cost.seq(Cost::poison());
            }
        };

        match name.as_str() {
            "set" => self.apply_set(cmd, env),
            "incr" => self.apply_incr(cmd, env),
            "append" | "lappend" => {
                invalidate_target(cmd.words.get(1), env);
            }
            "unset" => {
                invalidate_target(cmd.words.get(1), env);
            }
            "if" => return cost.seq(self.if_cost(cmd, env, adepth)),
            "while" => return cost.seq(self.while_cost(cmd, env, adepth)),
            "foreach" => return cost.seq(self.foreach_cost(cmd, env, adepth)),
            "catch" => return cost.seq(self.catch_cost(cmd, env, adepth)),
            "eval" => {
                env.clear();
                return cost.seq(Cost::poison());
            }
            "proc" => {
                // Definition only: 1 step + word costs, no body execution.
            }
            "error" => {
                cost.terminates = true;
            }
            "return" | "halt" | "break" | "continue" => {
                cost.terminates = true;
            }
            "bc_push" => {
                cost = cost.add_growth(payload_size(cmd.words.get(2)));
            }
            "cab_append" => {
                cost = cost.add_growth(payload_size(cmd.words.get(3)));
            }
            _ => {
                if crate::builtins::builtin(&name).is_none() {
                    if self.procs.contains_key(&name) {
                        let summary = self.proc_summary(&name, adepth).deepen();
                        cost = cost.seq(summary);
                    } else if self.opaque_procs {
                        // A computed proc name exists somewhere: this could
                        // be anything.
                        env.clear();
                        return cost.seq(Cost::poison());
                    }
                    // Else: unknown command ⇒ guaranteed runtime error.
                    // Already fully charged (1 step + words).
                }
            }
        }
        cost
    }

    fn word_cost(&mut self, word: &Word, env: &mut Env, adepth: u32) -> Cost {
        match &word.kind {
            WordKind::Braced(_) => Cost::zero(),
            WordKind::Parts(parts) => {
                let mut cost = Cost::zero();
                for part in parts {
                    if let WordPart::Command(inner) = part {
                        let inner_cost = match parse_script(inner) {
                            Ok(cmds) => {
                                // The inner script can write variables in
                                // the *current* scope.
                                let mut inner_env = env.clone();
                                let c = self.script_cost(&cmds, &mut inner_env, adepth + 1);
                                apply_script_writes(inner, env);
                                c
                            }
                            Err(_) => Cost::poison(),
                        };
                        let mut deep = inner_cost.deepen();
                        deep.terminates = false;
                        cost = cost.seq(deep);
                    }
                }
                cost
            }
        }
    }

    fn apply_set(&mut self, cmd: &Command, env: &mut Env) {
        let target = match cmd.words.get(1).and_then(|w| w.static_text()) {
            Some(t) => t.to_string(),
            None => {
                env.clear();
                return;
            }
        };
        let value = cmd.words.get(2).and_then(|w| eval_const_word(w, env));
        match value {
            Some(v) => {
                env.insert(target, v);
            }
            None => {
                env.remove(&target);
            }
        }
    }

    fn apply_incr(&mut self, cmd: &Command, env: &mut Env) {
        let target = match cmd.words.get(1).and_then(|w| w.static_text()) {
            Some(t) => t.to_string(),
            None => {
                env.clear();
                return;
            }
        };
        let amount = match cmd.words.get(2) {
            None => Some(1i64),
            Some(w) => eval_const_word(w, env),
        };
        match (env.get(&target).copied(), amount) {
            (Some(cur), Some(by)) => {
                env.insert(target, cur.wrapping_add(by));
            }
            _ => {
                // `incr` on an unset var defaults it to 0 then adds: if the
                // var was unknown we stay unknown.
                env.remove(&target);
            }
        }
    }

    fn if_cost(&mut self, cmd: &Command, env: &mut Env, adepth: u32) -> Cost {
        let chain = match if_chain(&cmd.words[1..]) {
            Some(chain) => chain,
            None => {
                env.clear();
                return Cost::poison();
            }
        };
        // Condition evaluation costs: embedded `[..]` scripts inside braced
        // conditions run per evaluation; only the first condition is
        // guaranteed to be evaluated.
        let mut cond_cost = Cost::zero();
        let mut first = true;
        let mut has_else = false;
        let mut branches: Vec<Cost> = Vec::new();
        for (cond, body) in &chain {
            match cond {
                Some(cond_word) => {
                    let c = self.condition_cost(cond_word, env, adepth);
                    cond_cost = if first {
                        cond_cost.seq(c)
                    } else {
                        cond_cost.seq(c.guard())
                    };
                    first = false;
                }
                None => has_else = true,
            }
            let body_cost = match body.static_text() {
                Some(text) => match parse_script(text) {
                    Ok(cmds) => {
                        let mut branch_env = env.clone();
                        let mut c = self
                            .script_cost(&cmds, &mut branch_env, adepth + 1)
                            .deepen();
                        // `return`/`break` inside a chosen branch does
                        // terminate the enclosing script.
                        if !c.terminates {
                            c.terminates = false;
                        }
                        c
                    }
                    Err(_) => Cost::poison(),
                },
                None => Cost::poison(),
            };
            branches.push(body_cost);
        }
        if !has_else {
            branches.push(Cost::zero());
        }
        let mut joined = branches[0];
        for b in &branches[1..] {
            joined = joined.join(*b);
        }
        // Invalidate everything any branch or condition may have written.
        let mut written = BTreeSet::new();
        let mut unknown_writes = false;
        for (cond, body) in &chain {
            if let Some(cond_word) = cond {
                collect_cond_writes(cond_word, &mut written, &mut unknown_writes);
            }
            match body.static_text() {
                Some(text) => collect_script_writes(text, &mut written, &mut unknown_writes),
                None => unknown_writes = true,
            }
        }
        if unknown_writes {
            env.clear();
        } else {
            for var in &written {
                env.remove(var);
            }
        }
        cond_cost.seq(joined)
    }

    /// Cost of evaluating an `if`/`while` condition word once.
    fn condition_cost(&mut self, cond: &Word, env: &mut Env, adepth: u32) -> Cost {
        match &cond.kind {
            WordKind::Braced(text) => {
                let mut cost = Cost::zero();
                for script in embedded_scripts(text) {
                    let inner = match parse_script(&script) {
                        Ok(cmds) => {
                            let mut inner_env = env.clone();
                            self.script_cost(&cmds, &mut inner_env, adepth + 1)
                        }
                        Err(_) => Cost::poison(),
                    };
                    let mut deep = inner.deepen();
                    deep.terminates = false;
                    cost = cost.seq(deep);
                }
                cost
            }
            // Parts conditions were already substituted during word
            // evaluation; re-evaluation of the resulting *string* by
            // `substitute` finds no `[` / `$` syntax that wasn't literal
            // text, but we cannot prove that, so treat embedded scripts in
            // literal parts conservatively: none statically visible ⇒ zero.
            WordKind::Parts(_) => Cost::zero(),
        }
    }

    fn while_cost(&mut self, cmd: &Command, env: &mut Env, adepth: u32) -> Cost {
        if cmd.words.len() != 3 {
            env.clear();
            return Cost::poison();
        }
        let cond_text = match cmd.words[1].static_text() {
            Some(t) => t.to_string(),
            None => {
                env.clear();
                return Cost::poison();
            }
        };
        let body_text = match cmd.words[2].static_text() {
            Some(t) => t.to_string(),
            None => {
                env.clear();
                return Cost::poison();
            }
        };
        let body_cmds = match parse_script(&body_text) {
            Ok(cmds) => cmds,
            Err(_) => {
                env.clear();
                return Cost::poison();
            }
        };

        // Analyze cond/body against an env scrubbed of everything the loop
        // may write (values change across iterations).
        let mut written = BTreeSet::new();
        let mut unknown_writes = false;
        collect_script_writes(&body_text, &mut written, &mut unknown_writes);
        for script in embedded_scripts(&cond_text) {
            collect_script_writes(&script, &mut written, &mut unknown_writes);
        }
        let mut loop_env: Env = if unknown_writes {
            Env::new()
        } else {
            let mut e = env.clone();
            for var in &written {
                e.remove(var);
            }
            e
        };

        let inference = counted_loop(&cond_text, &body_cmds, env);

        let cond_cost = {
            let mut c = Cost::zero();
            for script in embedded_scripts(&cond_text) {
                let inner = match parse_script(&script) {
                    Ok(cmds) => {
                        let mut inner_env = loop_env.clone();
                        self.script_cost(&cmds, &mut inner_env, adepth + 1)
                    }
                    Err(_) => Cost::poison(),
                };
                let mut deep = inner.deepen();
                deep.terminates = false;
                c = c.seq(deep);
            }
            c
        };
        let mut body_cost = self
            .script_cost(&body_cmds, &mut loop_env, adepth + 1)
            .deepen();
        body_cost.terminates = false;

        // Invalidate loop writes in the outer env.
        if unknown_writes {
            env.clear();
        } else {
            for var in &written {
                env.remove(var);
            }
            // The counter itself has a known final value only in simple
            // cases; stay conservative and leave it invalidated.
        }

        match inference {
            Some((n, m)) => {
                let iters = CostInterval { lo: m, hi: Some(n) };
                let cond_evals = CostInterval {
                    lo: m.saturating_add(1),
                    hi: Some(n.saturating_add(1)),
                };
                // steps = 1 (charged by caller) + cond·(iters+1)
                //       + (body + 1 extra per-iteration step)·iters
                let steps = cond_cost
                    .steps
                    .mul(cond_evals)
                    .add(body_cost.steps.add(CostInterval::exact(1)).mul(iters));
                let growth = cond_cost
                    .growth
                    .mul(cond_evals)
                    .add(body_cost.growth.mul(iters));
                // The condition is evaluated at least once; the body's
                // depth counts toward lo only if at least one iteration is
                // guaranteed.
                let body_depth = if m >= 1 {
                    body_cost.depth
                } else {
                    CostInterval {
                        lo: 0,
                        hi: body_cost.depth.hi,
                    }
                };
                let depth = cond_cost.depth.max_(body_depth);
                Cost {
                    steps,
                    depth,
                    growth,
                    divergent: cond_cost.divergent || body_cost.divergent,
                    terminates: false,
                }
            }
            None => {
                // Uninferable trip count: the condition still runs at least
                // once on any successful path.
                Cost {
                    steps: CostInterval {
                        lo: cond_cost.steps.lo,
                        hi: None,
                    },
                    depth: CostInterval {
                        lo: cond_cost.depth.lo,
                        hi: None,
                    },
                    growth: CostInterval { lo: 0, hi: None },
                    divergent: true,
                    terminates: false,
                }
            }
        }
    }

    fn foreach_cost(&mut self, cmd: &Command, env: &mut Env, adepth: u32) -> Cost {
        if cmd.words.len() != 4 {
            env.clear();
            return Cost::poison();
        }
        let var = cmd.words[1].static_text().map(|s| s.to_string());
        let body_text = match cmd.words[3].static_text() {
            Some(t) => t.to_string(),
            None => {
                env.clear();
                return Cost::poison();
            }
        };
        let body_cmds = match parse_script(&body_text) {
            Ok(cmds) => cmds,
            Err(_) => {
                env.clear();
                return Cost::poison();
            }
        };

        let mut written = BTreeSet::new();
        let mut unknown_writes = false;
        collect_script_writes(&body_text, &mut written, &mut unknown_writes);
        match &var {
            Some(v) => {
                written.insert(v.clone());
            }
            None => unknown_writes = true,
        }
        let mut loop_env: Env = if unknown_writes {
            Env::new()
        } else {
            let mut e = env.clone();
            for v in &written {
                e.remove(v);
            }
            e
        };

        let mut body_cost = self
            .script_cost(&body_cmds, &mut loop_env, adepth + 1)
            .deepen();
        body_cost.terminates = false;

        if unknown_writes {
            env.clear();
        } else {
            for v in &written {
                env.remove(v);
            }
        }

        // Literal list ⇒ exact element count; runtime list ⇒ input-bounded.
        let iters = match cmd.words[2].static_text() {
            Some(list_text) => {
                let count = parse_list(list_text).len() as u64;
                let lo = if body_may_exit_early(&body_cmds) {
                    0
                } else {
                    count
                };
                CostInterval {
                    lo,
                    hi: Some(count),
                }
            }
            None => CostInterval { lo: 0, hi: None },
        };
        let divergent = body_cost.divergent;
        let steps = body_cost.steps.mul(iters);
        let growth = body_cost.growth.mul(iters);
        let depth = if iters.lo >= 1 {
            body_cost.depth
        } else {
            CostInterval {
                lo: 0,
                hi: body_cost.depth.hi,
            }
        };
        Cost {
            steps,
            depth,
            growth,
            divergent,
            terminates: false,
        }
    }

    fn catch_cost(&mut self, cmd: &Command, env: &mut Env, adepth: u32) -> Cost {
        if cmd.words.len() < 2 || cmd.words.len() > 3 {
            env.clear();
            return Cost::poison();
        }
        let body_cost = match cmd.words[1].static_text() {
            Some(text) => match parse_script(text) {
                Ok(cmds) => {
                    let mut inner_env = env.clone();
                    self.script_cost(&cmds, &mut inner_env, adepth + 1)
                }
                Err(_) => Cost::poison(),
            },
            None => Cost::poison(),
        };
        // The body may abort at any point (catch absorbs the error), so
        // only upper bounds survive. Flow control caught by `catch` does
        // not terminate the enclosing script.
        let mut cost = body_cost.guard().deepen();
        cost.terminates = false;

        // Invalidate: the result var and anything the body wrote.
        let mut written = BTreeSet::new();
        let mut unknown_writes = false;
        match cmd.words[1].static_text() {
            Some(text) => collect_script_writes(text, &mut written, &mut unknown_writes),
            None => unknown_writes = true,
        }
        if let Some(result_word) = cmd.words.get(2) {
            match result_word.static_text() {
                Some(v) => {
                    written.insert(v.to_string());
                }
                None => unknown_writes = true,
            }
        }
        if unknown_writes {
            env.clear();
        } else {
            for v in &written {
                env.remove(v);
            }
        }
        cost
    }
}

/// Parse the `if` argument list into `(condition, body)` pairs, mirroring
/// the interpreter's `cmd_if` walk. `None` condition = `else` branch.
fn if_chain(words: &[Word]) -> Option<Vec<(Option<&Word>, &Word)>> {
    let mut chain = Vec::new();
    let mut i = 0;
    if words.is_empty() {
        return None;
    }
    // First: cond body
    if words.len() < 2 {
        return None;
    }
    chain.push((Some(&words[0]), &words[1]));
    i += 2;
    while i < words.len() {
        match words[i].static_text() {
            Some("elseif") => {
                if i + 2 >= words.len() {
                    return None;
                }
                chain.push((Some(&words[i + 1]), &words[i + 2]));
                i += 3;
            }
            Some("else") => {
                if i + 1 >= words.len() || i + 2 != words.len() {
                    return None;
                }
                chain.push((None, &words[i + 1]));
                i += 2;
            }
            _ => return None,
        }
    }
    Some(chain)
}

/// Extract `[...]` embedded scripts from raw condition text, using the same
/// bracket scan as the interpreter's `substitute` (not quote-aware).
fn embedded_scripts(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut scripts = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            let mut depth = 1usize;
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            if depth == 0 {
                scripts.push(text[start..j - 1].to_string());
                i = j;
            } else {
                // Unterminated bracket: the interpreter errors at runtime.
                break;
            }
        } else {
            i += 1;
        }
    }
    scripts
}

/// Statically evaluate a word to an exact integer, if possible.
fn eval_const_word(word: &Word, env: &Env) -> Option<i64> {
    match &word.kind {
        WordKind::Braced(text) => text.trim().parse::<i64>().ok(),
        WordKind::Parts(parts) => {
            if parts.len() == 1 {
                match &parts[0] {
                    WordPart::Literal(text) => text.trim().parse::<i64>().ok(),
                    WordPart::Variable(name) => env.get(name).copied(),
                    WordPart::Command(inner) => eval_const_expr(inner, env),
                }
            } else {
                None
            }
        }
    }
}

/// Constant-fold `[expr ...]` bodies of the simple forms the interpreter
/// supports: `expr <a>`, `expr <a> <op> <b>` with `+ - *`.
fn eval_const_expr(inner: &str, env: &Env) -> Option<i64> {
    let cmds = parse_script(inner).ok()?;
    if cmds.len() != 1 {
        return None;
    }
    let cmd = &cmds[0];
    if cmd.words.first().and_then(|w| w.static_text()) != Some("expr") {
        return None;
    }
    let operand = |w: &Word| -> Option<i64> { eval_const_word(w, env) };
    match cmd.words.len() {
        2 => operand(&cmd.words[1]),
        4 => {
            let a = operand(&cmd.words[1])?;
            let op = cmd.words[2].static_text()?;
            let b = operand(&cmd.words[3])?;
            match op {
                "+" => Some(a.wrapping_add(b)),
                "-" => Some(a.wrapping_sub(b)),
                "*" => Some(a.wrapping_mul(b)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Upper/lower bound on the byte size a growth-op payload contributes.
fn payload_size(word: Option<&Word>) -> CostInterval {
    match word {
        Some(w) => match w.static_text() {
            Some(text) => CostInterval::exact(text.len() as u64),
            None => CostInterval::at_least(0),
        },
        None => CostInterval::zero(),
    }
}

/// Remove a (possibly computed) assignment target from the env.
fn invalidate_target(word: Option<&Word>, env: &mut Env) {
    match word.and_then(|w| w.static_text()) {
        Some(target) => {
            env.remove(target);
        }
        None => env.clear(),
    }
}

/// Collect variables a script text may write. Sets `unknown` when writes
/// cannot be enumerated (computed targets, `eval`, computed commands).
fn collect_script_writes(text: &str, written: &mut BTreeSet<String>, unknown: &mut bool) {
    let cmds = match parse_script(text) {
        Ok(cmds) => cmds,
        Err(_) => {
            *unknown = true;
            return;
        }
    };
    collect_command_writes(&cmds, written, unknown, 0);
}

fn collect_cond_writes(cond: &Word, written: &mut BTreeSet<String>, unknown: &mut bool) {
    match &cond.kind {
        WordKind::Braced(text) => {
            for script in embedded_scripts(text) {
                collect_script_writes(&script, written, unknown);
            }
        }
        WordKind::Parts(parts) => {
            for part in parts {
                if let WordPart::Command(inner) = part {
                    collect_script_writes(inner, written, unknown);
                }
            }
        }
    }
}

fn collect_command_writes(
    cmds: &[Command],
    written: &mut BTreeSet<String>,
    unknown: &mut bool,
    adepth: u32,
) {
    if adepth > ANALYSIS_DEPTH_LIMIT {
        *unknown = true;
        return;
    }
    for cmd in cmds {
        // `[..]` parts inside any word execute in the current scope.
        for word in &cmd.words {
            if let WordKind::Parts(parts) = &word.kind {
                for part in parts {
                    if let WordPart::Command(inner) = part {
                        collect_script_writes(inner, written, unknown);
                    }
                }
            }
        }
        let name = match cmd.words.first().and_then(|w| w.static_text()) {
            Some(n) => n,
            None => {
                *unknown = true;
                continue;
            }
        };
        match name {
            "set" | "incr" | "append" | "lappend" | "unset" => {
                match cmd.words.get(1).and_then(|w| w.static_text()) {
                    Some(target) => {
                        written.insert(target.to_string());
                    }
                    None => *unknown = true,
                }
            }
            "foreach" => {
                match cmd.words.get(1).and_then(|w| w.static_text()) {
                    Some(var) => {
                        written.insert(var.to_string());
                    }
                    None => *unknown = true,
                }
                if let Some(body) = cmd.words.get(3).and_then(|w| w.static_text()) {
                    collect_script_writes(body, written, unknown);
                } else {
                    *unknown = true;
                }
            }
            "while" => {
                if let Some(cond) = cmd.words.get(1) {
                    collect_cond_writes(cond, written, unknown);
                }
                if let Some(body) = cmd.words.get(2).and_then(|w| w.static_text()) {
                    collect_script_writes(body, written, unknown);
                } else {
                    *unknown = true;
                }
            }
            "if" => {
                if let Some(chain) = if_chain(&cmd.words[1..]) {
                    for (cond, body) in chain {
                        if let Some(cond_word) = cond {
                            collect_cond_writes(cond_word, written, unknown);
                        }
                        match body.static_text() {
                            Some(text) => collect_script_writes(text, written, unknown),
                            None => *unknown = true,
                        }
                    }
                } else {
                    *unknown = true;
                }
            }
            "catch" => {
                match cmd.words.get(1).and_then(|w| w.static_text()) {
                    Some(body) => collect_script_writes(body, written, unknown),
                    None => *unknown = true,
                }
                if let Some(result_word) = cmd.words.get(2) {
                    match result_word.static_text() {
                        Some(v) => {
                            written.insert(v.to_string());
                        }
                        None => *unknown = true,
                    }
                }
            }
            "eval" => *unknown = true,
            "proc" => {
                // Body runs only when called; calls are separate commands
                // that either resolve to builtins (no var writes in caller
                // scope — set_in_scope writes the callee's scope) or are
                // handled at their own call sites.
            }
            _ => {
                // Builtins other than the above don't write caller
                // variables; proc calls get a fresh scope (`set_in_scope`
                // writes innermost only), so they can't clobber ours.
            }
        }
    }
}

/// Script texts executed by a control command (`if`/`while`/`foreach`/
/// `catch`): bodies plus `[..]` scripts embedded in braced conditions.
/// Returns `None` when a body is computed (non-static) or the shape is
/// malformed. Condition *text* is deliberately not parsed as a script —
/// `$i < 2` is an expression, not a command.
fn control_subscripts(cmd: &Command) -> Option<Vec<String>> {
    let name = cmd.words.first().and_then(|w| w.static_text())?;
    let mut scripts = Vec::new();
    match name {
        "if" => {
            let chain = if_chain(&cmd.words[1..])?;
            for (cond, body) in chain {
                if let Some(cond_word) = cond {
                    if let WordKind::Braced(text) = &cond_word.kind {
                        scripts.extend(embedded_scripts(text));
                    }
                    // Parts conditions: their `[..]` parts are scanned by
                    // the callers' generic word-part loop.
                }
                scripts.push(body.static_text()?.to_string());
            }
        }
        "while" => {
            if cmd.words.len() != 3 {
                return None;
            }
            if let Some(text) = cmd.words[1].static_text() {
                scripts.extend(embedded_scripts(text));
            }
            scripts.push(cmd.words[2].static_text()?.to_string());
        }
        "foreach" => {
            if cmd.words.len() != 4 {
                return None;
            }
            scripts.push(cmd.words[3].static_text()?.to_string());
        }
        "catch" => {
            if cmd.words.len() < 2 || cmd.words.len() > 3 {
                return None;
            }
            scripts.push(cmd.words[1].static_text()?.to_string());
        }
        _ => {}
    }
    Some(scripts)
}

/// True if the body contains any `break`/`continue`/`return`/`halt`/`error`
/// that could cut iterations short (used to decide whether `foreach` over a
/// literal list is guaranteed to run all elements).
fn body_may_exit_early(cmds: &[Command]) -> bool {
    for cmd in cmds {
        for word in &cmd.words {
            if let WordKind::Parts(parts) = &word.kind {
                for part in parts {
                    if let WordPart::Command(inner) = part {
                        if let Ok(inner_cmds) = parse_script(inner) {
                            if body_may_exit_early(&inner_cmds) {
                                return true;
                            }
                        } else {
                            return true;
                        }
                    }
                }
            }
        }
        let name = match cmd.words.first().and_then(|w| w.static_text()) {
            Some(n) => n,
            None => return true,
        };
        match name {
            "break" | "continue" | "return" | "halt" | "error" | "eval" => return true,
            "if" | "while" | "foreach" | "catch" => match control_subscripts(cmd) {
                Some(scripts) => {
                    for script in scripts {
                        match parse_script(&script) {
                            Ok(inner) => {
                                if body_may_exit_early(&inner) {
                                    return true;
                                }
                            }
                            Err(_) => return true,
                        }
                    }
                }
                None => return true,
            },
            _ => {
                if crate::builtins::builtin(name).is_none() {
                    // Unknown command or proc call: could error or (if a
                    // proc) contain flow control that escapes as an error.
                    return true;
                }
            }
        }
    }
    false
}

/// Apply the variable-invalidation effect of an embedded `[..]` script to
/// the enclosing env (the inner script runs in the same scope).
fn apply_script_writes(inner: &str, env: &mut Env) {
    let mut written = BTreeSet::new();
    let mut unknown = false;
    collect_script_writes(inner, &mut written, &mut unknown);
    if unknown {
        env.clear();
    } else {
        for var in &written {
            env.remove(var);
        }
    }
}

/// Try to infer the trip count of a counted `while` loop.
///
/// Returns `(n, m)`: `n` = maximum iterations, `m` = minimum iterations on
/// a successful run. Requirements (all structural, zero false positives):
///
/// - the condition's first `&&`-conjunct is `$var op bound` with
///   `op ∈ {<, <=, >, >=}` and `bound` a literal int or env-exact variable;
/// - no top-level `||` in the condition;
/// - `var` starts env-exact;
/// - exactly one top-level body command steps `var` by a constant `k`
///   (`incr var`, `incr var k`, `set var [expr $var ± k]`), no other writes
///   to `var` anywhere in the body or condition scripts, no `eval` or
///   computed names near `var`, and no `continue` (which could skip the
///   step);
/// - `k`'s sign moves `var` toward the bound.
fn counted_loop(cond_text: &str, body_cmds: &[Command], env: &Env) -> Option<(u64, u64)> {
    let conjuncts = split_conjuncts(cond_text)?;
    let (var, op, bound_ref) = parse_guard(conjuncts.first()?)?;
    let bound = match bound_ref {
        BoundRef::Literal(b) => b,
        BoundRef::Var(name) => *env.get(&name)?,
    };
    let start = *env.get(&var)?;

    // Exactly one self-step of the counter at the top level.
    let mut step: Option<i64> = None;
    for cmd in body_cmds {
        if let Some(k) = self_step(cmd, &var) {
            if step.is_some() {
                return None; // two steps ⇒ give up
            }
            step = Some(k);
        }
    }
    let k = step?;
    if k == 0 {
        return None;
    }

    // No other writes to the counter, no eval/opacity, no `continue`.
    if body_touches_counter_unsafely(body_cmds, &var) {
        return None;
    }
    for script in embedded_scripts(cond_text) {
        let mut written = BTreeSet::new();
        let mut unknown = false;
        collect_script_writes(&script, &mut written, &mut unknown);
        if unknown || written.contains(&var) {
            return None;
        }
    }

    let a = start as i128;
    let b = bound as i128;
    let kk = k as i128;
    let n: i128 = match op {
        GuardOp::Lt => {
            if kk <= 0 {
                return None;
            }
            if a >= b {
                0
            } else {
                (b - a + kk - 1) / kk
            }
        }
        GuardOp::Le => {
            if kk <= 0 {
                return None;
            }
            if a > b {
                0
            } else {
                (b - a) / kk + 1
            }
        }
        GuardOp::Gt => {
            if kk >= 0 {
                return None;
            }
            let kk = -kk;
            if a <= b {
                0
            } else {
                (a - b + kk - 1) / kk
            }
        }
        GuardOp::Ge => {
            if kk >= 0 {
                return None;
            }
            let kk = -kk;
            if a < b {
                0
            } else {
                (a - b) / kk + 1
            }
        }
    };
    if n < 0 {
        return None;
    }
    let n: u64 = n.try_into().ok()?;

    // Lower bound: the full n iterations run iff the guard conjunct is the
    // whole condition and nothing exits the body early. (`error` makes the
    // run unsuccessful, so it does not reduce the successful-run minimum —
    // but `break`/`return`/`halt` do.)
    let m = if conjuncts.len() == 1 && !body_has_early_exit(body_cmds) {
        n
    } else {
        0
    };
    Some((n, m))
}

enum BoundRef {
    Literal(i64),
    Var(String),
}

#[derive(Clone, Copy)]
enum GuardOp {
    Lt,
    Le,
    Gt,
    Ge,
}

/// Split a condition on top-level (bracket-depth-0) `&&`. Returns `None`
/// when a top-level `||` is present (either side may keep the loop alive).
fn split_conjuncts(text: &str) -> Option<Vec<String>> {
    let bytes = text.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'[' => depth += 1,
            b']' => depth = depth.saturating_sub(1),
            b'&' if depth == 0 && i + 1 < bytes.len() && bytes[i + 1] == b'&' => {
                parts.push(text[start..i].to_string());
                i += 2;
                start = i;
                continue;
            }
            b'|' if depth == 0 && i + 1 < bytes.len() && bytes[i + 1] == b'|' => {
                return None;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(text[start..].to_string());
    Some(parts)
}

/// Parse `$var op bound` where the whole conjunct is exactly that shape.
fn parse_guard(conjunct: &str) -> Option<(String, GuardOp, BoundRef)> {
    let tokens: Vec<&str> = conjunct.split_whitespace().collect();
    if tokens.len() != 3 {
        return None;
    }
    let var = tokens[0].strip_prefix('$')?;
    if var.is_empty() || !var.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    let op = match tokens[1] {
        "<" => GuardOp::Lt,
        "<=" => GuardOp::Le,
        ">" => GuardOp::Gt,
        ">=" => GuardOp::Ge,
        _ => return None,
    };
    let bound = if let Ok(n) = tokens[2].parse::<i64>() {
        BoundRef::Literal(n)
    } else if let Some(name) = tokens[2].strip_prefix('$') {
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return None;
        }
        BoundRef::Var(name.to_string())
    } else {
        return None;
    };
    Some((var.to_string(), op, bound))
}

/// Match a top-level command that steps `var` by a constant:
/// `incr var`, `incr var <k>`, `set var [expr $var ± k]`,
/// `set var [expr k + $var]`.
fn self_step(cmd: &Command, var: &str) -> Option<i64> {
    let name = cmd.words.first().and_then(|w| w.static_text())?;
    match name {
        "incr" => {
            if cmd.words.get(1).and_then(|w| w.static_text()) != Some(var) {
                return None;
            }
            match cmd.words.get(2) {
                None => Some(1),
                Some(w) => w.static_text().and_then(|t| t.trim().parse::<i64>().ok()),
            }
        }
        "set" => {
            if cmd.words.get(1).and_then(|w| w.static_text()) != Some(var) {
                return None;
            }
            // Value must be a single `[expr ...]` command part.
            let value = cmd.words.get(2)?;
            let inner = match &value.kind {
                WordKind::Parts(parts) if parts.len() == 1 => match &parts[0] {
                    WordPart::Command(inner) => inner,
                    _ => return None,
                },
                _ => return None,
            };
            let cmds = parse_script(inner).ok()?;
            if cmds.len() != 1 {
                return None;
            }
            let expr = &cmds[0];
            if expr.words.first().and_then(|w| w.static_text()) != Some("expr") {
                return None;
            }
            if expr.words.len() != 4 {
                return None;
            }
            let is_var = |w: &Word| -> bool {
                matches!(
                    &w.kind,
                    WordKind::Parts(parts)
                        if parts.len() == 1
                            && matches!(&parts[0], WordPart::Variable(v) if v == var)
                )
            };
            let lit = |w: &Word| -> Option<i64> {
                w.static_text().and_then(|t| t.trim().parse::<i64>().ok())
            };
            let op = expr.words[2].static_text()?;
            match op {
                "+" => {
                    if is_var(&expr.words[1]) {
                        lit(&expr.words[3])
                    } else if is_var(&expr.words[3]) {
                        lit(&expr.words[1])
                    } else {
                        None
                    }
                }
                "-" => {
                    if is_var(&expr.words[1]) {
                        lit(&expr.words[3]).map(|k| -k)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// True if anything in the body (recursively) writes `var` outside the one
/// allowed self-step, uses `eval`, has computed names, or uses `continue`
/// (which could skip the self-step on an iteration).
fn body_touches_counter_unsafely(cmds: &[Command], var: &str) -> bool {
    touches_unsafely(cmds, var, true, 0)
}

fn touches_unsafely(cmds: &[Command], var: &str, top_level: bool, adepth: u32) -> bool {
    if adepth > ANALYSIS_DEPTH_LIMIT {
        return true;
    }
    for cmd in cmds {
        for word in &cmd.words {
            if let WordKind::Parts(parts) = &word.kind {
                for part in parts {
                    if let WordPart::Command(inner) = part {
                        match parse_script(inner) {
                            Ok(inner_cmds) => {
                                if touches_unsafely(&inner_cmds, var, false, adepth + 1) {
                                    return true;
                                }
                            }
                            Err(_) => return true,
                        }
                    }
                }
            }
        }
        let name = match cmd.words.first().and_then(|w| w.static_text()) {
            Some(n) => n,
            None => return true,
        };
        match name {
            "eval" => return true,
            "continue" => return true,
            "set" | "incr" | "append" | "lappend" | "unset" => {
                match cmd.words.get(1).and_then(|w| w.static_text()) {
                    Some(target) => {
                        if target == var {
                            // The single allowed self-step is top-level and
                            // matched by `self_step`; any *other* write —
                            // including nested ones — disqualifies. At top
                            // level we only allow the exact self-step form.
                            if !(top_level && self_step(cmd, var).is_some()) {
                                return true;
                            }
                        }
                    }
                    None => return true,
                }
            }
            "if" | "while" | "foreach" | "catch" => {
                if name == "foreach" {
                    match cmd.words.get(1).and_then(|w| w.static_text()) {
                        Some(v) => {
                            if v == var {
                                return true;
                            }
                        }
                        None => return true,
                    }
                }
                if name == "catch" {
                    if let Some(result) = cmd.words.get(2) {
                        match result.static_text() {
                            Some(v) => {
                                if v == var {
                                    return true;
                                }
                            }
                            None => return true,
                        }
                    }
                }
                match control_subscripts(cmd) {
                    Some(scripts) => {
                        for script in scripts {
                            match parse_script(&script) {
                                Ok(inner) => {
                                    if touches_unsafely(&inner, var, false, adepth + 1) {
                                        return true;
                                    }
                                }
                                Err(_) => return true,
                            }
                        }
                    }
                    None => return true,
                }
            }
            _ => {
                // Builtins don't write our counter (guard targets handled
                // above); proc calls get a fresh scope and cannot write the
                // caller's counter (`set_in_scope` writes innermost only).
            }
        }
    }
    false
}

/// True if the body contains `break`/`return`/`halt` anywhere (could cut
/// the successful-run iteration count short). `error` is excluded: an
/// erroring run is not a successful run.
fn body_has_early_exit(cmds: &[Command]) -> bool {
    has_early_exit(cmds, 0)
}

fn has_early_exit(cmds: &[Command], adepth: u32) -> bool {
    if adepth > ANALYSIS_DEPTH_LIMIT {
        return true;
    }
    for cmd in cmds {
        for word in &cmd.words {
            if let WordKind::Parts(parts) = &word.kind {
                for part in parts {
                    if let WordPart::Command(inner) = part {
                        match parse_script(inner) {
                            Ok(inner_cmds) => {
                                if has_early_exit(&inner_cmds, adepth + 1) {
                                    return true;
                                }
                            }
                            Err(_) => return true,
                        }
                    }
                }
            }
        }
        let name = match cmd.words.first().and_then(|w| w.static_text()) {
            Some(n) => n,
            None => return true,
        };
        match name {
            "break" | "return" | "halt" | "eval" => return true,
            "if" | "while" | "foreach" | "catch" => match control_subscripts(cmd) {
                Some(scripts) => {
                    for script in scripts {
                        match parse_script(&script) {
                            Ok(inner) => {
                                if has_early_exit(&inner, adepth + 1) {
                                    return true;
                                }
                            }
                            Err(_) => return true,
                        }
                    }
                }
                None => return true,
            },
            _ => {
                if crate::builtins::builtin(name).is_none() {
                    // Proc call: flow control escaping a proc is a runtime
                    // error (not early exit), but an unknown command errors
                    // the run — which doesn't count against the successful
                    // minimum either. Still, a proc body could `halt`.
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::NullHost;
    use crate::interp::{Interp, InterpConfig};

    fn bound(src: &str) -> CostBound {
        cost_bound(src).expect("parse")
    }

    /// Run a script under the interpreter and return its exact step count.
    fn run_steps(src: &str) -> u64 {
        let mut host = NullHost;
        let mut interp = Interp::new(&mut host);
        let outcome = interp.run(src).expect("run ok");
        outcome.steps
    }

    #[test]
    fn straight_line_exact() {
        let b = bound("set x 1\nset y 2");
        assert_eq!(b.steps, CostInterval::exact(2));
        assert_eq!(b.depth, CostInterval::exact(0));
        assert_eq!(b.verdict(), "bounded");
        assert_eq!(run_steps("set x 1\nset y 2"), 2);
    }

    #[test]
    fn counted_while_exact() {
        let src = "set i 0\nwhile {$i < 10} { incr i }";
        let b = bound(src);
        // 1 (set) + 1 (while) + 10·(1 incr + 1 extra per-iteration step)
        assert_eq!(b.steps, CostInterval::exact(22));
        assert_eq!(b.depth, CostInterval::exact(1));
        assert_eq!(run_steps(src), 22);
    }

    #[test]
    fn counted_while_set_expr() {
        let src = "set tries 0\nwhile {$tries < 3} { set tries [expr $tries + 1] }";
        let b = bound(src);
        // Body: set (1 step) + [expr] inner (1 step) = 2 steps, depth 2
        // (body at depth 1, [..] at depth 2).
        // Total: 1 (set) + 1 (while) + 3·(2 + 1 extra) = 11.
        assert_eq!(b.steps, CostInterval::exact(11));
        assert_eq!(b.depth, CostInterval::exact(2));
        assert_eq!(run_steps(src), 11);
    }

    #[test]
    fn counted_while_multi_conjunct() {
        // Second conjunct means the loop may stop early: hi from the
        // counter, lo 0 iterations.
        let src = "set ok 1\nset i 0\nwhile {$i < 5 && $ok == 1} { incr i }";
        let b = bound(src);
        assert_eq!(b.steps.hi, Some(3 + 5 * 2));
        assert_eq!(b.steps.lo, 2 + 1); // two sets + the while command
        assert_eq!(b.verdict(), "bounded");
        assert_eq!(run_steps(src), 13);
    }

    #[test]
    fn nested_counted_whiles() {
        let src = "set i 0\nwhile {$i < 3} { set j 0\nwhile {$j < 2} { incr j }\nincr i }";
        let b = bound(src);
        // Inner loop: 1 (while cmd) + 2·(1 incr + 1 extra) = 5 steps.
        // Outer body: 1 (set j) + 5 + 1 (incr i) = 7, plus 1 extra/iter.
        // Total: 1 (set i) + 1 (outer while) + 3·8 = 26.
        assert_eq!(b.steps, CostInterval::exact(26));
        assert_eq!(run_steps(src), 26);
    }

    #[test]
    fn foreach_literal_exact() {
        let src = "foreach x {a b c} { set y $x }";
        let b = bound(src);
        // 1 (foreach) + 3·1 (set per element) = 4.
        assert_eq!(b.steps, CostInterval::exact(4));
        assert_eq!(b.depth, CostInterval::exact(1));
        assert_eq!(run_steps(src), 4);
    }

    #[test]
    fn foreach_dynamic_input_bound() {
        let b = bound("foreach x $items { set y $x }");
        assert_eq!(b.steps.hi, None);
        assert!(!b.divergent);
        assert_eq!(b.verdict(), "input-bound");
    }

    #[test]
    fn uninferable_while_divergent() {
        let b = bound("while {$x < 10} { set y 1 }");
        assert_eq!(b.steps.hi, None);
        assert!(b.divergent);
        assert_eq!(b.verdict(), "unbounded");
    }

    #[test]
    fn eval_divergent() {
        let b = bound("eval {set x 1}");
        assert!(b.divergent);
        assert_eq!(b.verdict(), "unbounded");
    }

    #[test]
    fn recursion_divergent() {
        let b = bound("proc f {} { f }\nf");
        assert!(b.divergent);
    }

    #[test]
    fn proc_summary_exact() {
        let src = "proc double {x} { expr $x * 2 }\ndouble 3";
        let b = bound(src);
        // 1 (proc def) + 1 (call) + 1 (expr in body) = 3; body at depth 1.
        assert_eq!(b.steps, CostInterval::exact(3));
        assert_eq!(b.depth, CostInterval::exact(1));
        assert_eq!(run_steps(src), 3);
    }

    #[test]
    fn growth_exact() {
        let src = "bc_push OUT abc\nbc_push OUT defgh";
        let b = bound(src);
        assert_eq!(b.growth_bytes, CostInterval::exact(8));
        assert_eq!(b.steps, CostInterval::exact(2));
    }

    #[test]
    fn growth_in_loop() {
        let src = "set i 0\nwhile {$i < 5} { bc_push OUT abc\nincr i }";
        let b = bound(src);
        assert_eq!(b.growth_bytes, CostInterval::exact(15));
        assert_eq!(run_steps(src), 2 + 5 * 3);
        assert_eq!(b.steps, CostInterval::exact(17));
    }

    #[test]
    fn catch_guards_lower_bound() {
        let src = "catch { error boom }";
        let b = bound(src);
        assert_eq!(b.steps.lo, 1);
        assert_eq!(b.steps.hi, Some(2));
        assert_eq!(run_steps(src), 2);
    }

    #[test]
    fn if_else_join() {
        let src = "set x 1\nif {$x == 1} { set a 1 } else { set a 1\nset b 2 }";
        let b = bound(src);
        // 1 (set) + 1 (if) + [1,2] body.
        assert_eq!(b.steps, CostInterval { lo: 3, hi: Some(4) });
        assert_eq!(run_steps(src), 3);
    }

    #[test]
    fn if_no_else_zero_branch() {
        let src = "if {$x == 1} { set a 1\nset b 2 }";
        let b = bound(src);
        assert_eq!(b.steps, CostInterval { lo: 1, hi: Some(3) });
    }

    #[test]
    fn gate_lenient_rejects_certain_death() {
        let gate = CostGate::lenient(10, 4);
        let heavy = bound("set i 0\nwhile {$i < 100} { incr i }");
        assert!(gate.check(&heavy).is_err());
        let light = bound("set x 1");
        assert!(gate.check(&light).is_ok());
        // Lenient admits unbounded (no proven lower bound above budget).
        let open = bound("while {$x < 10} { set y 1 }");
        assert!(gate.check(&open).is_ok());
    }

    #[test]
    fn gate_strict_requires_finite_bound() {
        let gate = CostGate::strict(1000, 8);
        let open = bound("while {$x < 10} { set y 1 }");
        assert!(gate.check(&open).is_err());
        let input = bound("foreach x $items { set y $x }");
        assert!(gate.check(&input).is_err());
        let fine = bound("set i 0\nwhile {$i < 10} { incr i }");
        assert!(gate.check(&fine).is_ok());
    }

    #[test]
    fn static_hi_is_sound_budget() {
        // Running with max_steps == hi must succeed; hi-1 must exhaust.
        let src = "set i 0\nwhile {$i < 25} { incr i }";
        let b = bound(src);
        let hi = b.steps.hi.expect("finite");
        let mut host = NullHost;
        let mut ok = Interp::with_config(
            &mut host,
            InterpConfig {
                max_steps: hi,
                ..Default::default()
            },
        );
        assert!(ok.run(src).is_ok());
        let mut host2 = NullHost;
        let mut tight = Interp::with_config(
            &mut host2,
            InterpConfig {
                max_steps: hi - 1,
                ..Default::default()
            },
        );
        assert!(tight.run(src).is_err());
    }

    #[test]
    fn break_lowers_minimum_not_maximum() {
        let src = "set i 0\nwhile {$i < 10} { incr i\nif {$i > 2} { break } }";
        let b = bound(src);
        // hi stays at the full-count formula; lo drops to the guaranteed
        // prefix (just the sets + while command).
        assert!(b.steps.hi.is_some());
        assert!(b.steps.lo < b.steps.hi.unwrap());
        let actual = run_steps(src);
        assert!(actual <= b.steps.hi.unwrap());
        assert!(actual >= b.steps.lo);
    }

    #[test]
    fn interval_render() {
        assert_eq!(CostInterval::exact(5).render(false), "5..5");
        assert_eq!(CostInterval::at_least(2).render(true), "2..?");
        assert_eq!(CostInterval::at_least(0).render(false), "0..n");
    }
}
