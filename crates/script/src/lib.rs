//! TacoScript: a small Tcl-like language for TACOMA agent code.
//!
//! The TACOMA prototype (§6) implements an agent as "a Tcl procedure; the text
//! of the procedure is stored in the agent's CODE folder", and every site runs
//! a Tcl interpreter that provides the place where agents execute.  We cannot
//! ship Ousterhout's Tcl, so this crate provides **TacoScript**, a from-scratch
//! interpreter with the properties the paper actually relies on:
//!
//! * agent code is plain text, carried in a folder, evaluated at whatever site
//!   the agent reaches — so agents can migrate between heterogeneous sites;
//! * the language can read and write folders and briefcases, meet other
//!   agents, and ask to move (`move_to`), which is how the paper's example
//!   agents (couriers, diffusion, shells) are written;
//! * the interpreter enforces a *step budget*, giving the kernel a handle on
//!   runaway agents (the paper's §3 motivates charging agents for resources).
//!
//! The language is a Tcl subset: commands are word lists; `{...}` quotes
//! literally; `[...]` substitutes a command's result; `$name` substitutes a
//! variable; `"..."` allows substitution inside quotes.  Control flow
//! (`if`/`while`/`foreach`/`proc`), arithmetic (`expr`), list and string
//! helpers, and the TACOMA builtins are provided by [`interp::Interp`].
//!
//! The interpreter is host-agnostic: TACOMA-specific commands are routed
//! through the [`host::ScriptHost`] trait, implemented by the `ag_tac` agent
//! in `tacoma-agents` (bridging to a real `MeetCtx`) and by a mock host in
//! tests.

#![warn(missing_docs)]

pub mod analysis;
pub mod audit;
pub mod builtins;
pub mod cost;
pub mod diag;
pub mod expr;
pub mod graph;
pub mod host;
pub mod interp;
pub mod parser;
pub mod value;

pub use analysis::{analyze, analyze_with, vet, AnalysisConfig};
pub use audit::{
    audit, audit_has_errors, render_audit, summarize, AgentSpec, AuditConfig, AuditFinding,
    EffectSummary,
};
pub use builtins::{builtin, BuiltinSpec, BUILTINS};
pub use cost::{cost_bound, CostBound, CostGate, CostInterval};
pub use diag::{has_errors, render_report, Diagnostic, Severity};
pub use host::{HostCall, NullHost, RecordingHost, ScriptHost};
pub use interp::{Interp, InterpConfig, ScriptError, ScriptOutcome};
pub use parser::{parse_script, Command, ParseError, Span, Word, WordKind, WordPart};
pub use value::{format_list, parse_list};
