//! Tcl-style list handling and numeric conversions.
//!
//! TacoScript values are strings, as in Tcl.  A *list* is a string whose
//! elements are separated by whitespace, with braces grouping elements that
//! themselves contain whitespace.  These helpers are used by `foreach`,
//! `lindex`, `llength`, `lappend` and by agents that exchange lists through
//! folders.

/// Splits a Tcl-style list string into its elements.
///
/// Braces group elements containing whitespace; nested braces are preserved
/// inside an element.  An unbalanced closing brace is treated literally.
pub fn parse_list(src: &str) -> Vec<String> {
    let mut elems = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // Skip whitespace.
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i >= chars.len() {
            break;
        }
        if chars[i] == '{' {
            // Braced element.
            let mut depth = 1;
            let mut elem = String::new();
            i += 1;
            while i < chars.len() && depth > 0 {
                match chars[i] {
                    '{' => {
                        depth += 1;
                        elem.push('{');
                    }
                    '}' => {
                        depth -= 1;
                        if depth > 0 {
                            elem.push('}');
                        }
                    }
                    c => elem.push(c),
                }
                i += 1;
            }
            elems.push(elem);
        } else {
            let mut elem = String::new();
            while i < chars.len() && !chars[i].is_whitespace() {
                elem.push(chars[i]);
                i += 1;
            }
            elems.push(elem);
        }
    }
    elems
}

/// Formats elements as a Tcl-style list string, bracing elements that contain
/// whitespace or are empty.
pub fn format_list<I, S>(elems: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = String::new();
    for (i, elem) in elems.into_iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let e = elem.as_ref();
        if e.is_empty() || e.chars().any(|c| c.is_whitespace()) {
            out.push('{');
            out.push_str(e);
            out.push('}');
        } else {
            out.push_str(e);
        }
    }
    out
}

/// Parses a string as an integer if possible (decimal, optional sign).
pub fn as_int(s: &str) -> Option<i64> {
    s.trim().parse::<i64>().ok()
}

/// Parses a string as a float if possible.
pub fn as_float(s: &str) -> Option<f64> {
    s.trim().parse::<f64>().ok()
}

/// Converts a float result back to a canonical string (integers print without
/// a decimal point, as Tcl's `expr` does for integral results).
pub fn num_to_string(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Tcl-style truthiness: "0", "" and "false" are false; everything else true.
pub fn is_truthy(s: &str) -> bool {
    let t = s.trim();
    !(t.is_empty() || t == "0" || t.eq_ignore_ascii_case("false") || t.eq_ignore_ascii_case("no"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_list() {
        assert_eq!(parse_list("a b c"), vec!["a", "b", "c"]);
        assert_eq!(parse_list("  a   b  "), vec!["a", "b"]);
        assert!(parse_list("").is_empty());
        assert!(parse_list("   ").is_empty());
    }

    #[test]
    fn parse_braced_elements() {
        assert_eq!(parse_list("a {b c} d"), vec!["a", "b c", "d"]);
        assert_eq!(parse_list("{x {y z}} w"), vec!["x {y z}", "w"]);
        assert_eq!(parse_list("{}"), vec![""]);
    }

    #[test]
    fn format_and_parse_round_trip() {
        let elems = vec!["plain", "has space", "", "nested {ok}"];
        let formatted = format_list(&elems);
        assert_eq!(formatted, "plain {has space} {} {nested {ok}}");
        let parsed = parse_list(&formatted);
        assert_eq!(parsed, elems);
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(as_int("42"), Some(42));
        assert_eq!(as_int(" -7 "), Some(-7));
        assert_eq!(as_int("4.5"), None);
        assert_eq!(as_float("4.5"), Some(4.5));
        assert_eq!(num_to_string(3.0), "3");
        assert_eq!(num_to_string(3.25), "3.25");
        assert_eq!(num_to_string(-0.0), "0");
    }

    #[test]
    fn truthiness() {
        assert!(is_truthy("1"));
        assert!(is_truthy("yes please"));
        assert!(!is_truthy("0"));
        assert!(!is_truthy(""));
        assert!(!is_truthy("false"));
        assert!(!is_truthy("No"));
    }
}
