//! The host interface: how TacoScript reaches the TACOMA kernel.
//!
//! The interpreter itself knows nothing about briefcases or sites; every
//! TACOMA-specific command (`bc_push`, `cab_append`, `meet`, `move_to`, ...)
//! is routed through the [`ScriptHost`] trait.  The `ag_tac` agent in
//! `tacoma-agents` implements the trait on top of a real `MeetCtx` and the
//! running agent's briefcase; tests use [`RecordingHost`], an in-memory fake
//! that records calls and simulates folders.

use std::collections::BTreeMap;

/// A record of one host call, kept by [`RecordingHost`] for assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostCall {
    /// A `meet` command was executed with the named agent.
    Meet(String),
    /// A `move_to` command was executed: (site, contact).
    MoveTo(u64, String),
    /// A `send_remote` command was executed: (site, contact, folders).
    SendRemote(u64, String, Vec<String>),
    /// A `log`/`puts` line was emitted.
    Log(String),
}

/// Kernel services exposed to a running TacoScript agent.
///
/// Briefcase folders hold string elements from the script's point of view;
/// the implementation is free to store them as raw bytes.
pub trait ScriptHost {
    // --- briefcase -----------------------------------------------------------

    /// Replaces `folder` with a single element `value`.
    fn bc_put(&mut self, folder: &str, value: &str);
    /// Appends `value` to `folder` (stack push / queue enqueue).
    fn bc_push(&mut self, folder: &str, value: &str);
    /// Pops the most recently pushed element of `folder`.
    fn bc_pop(&mut self, folder: &str) -> Option<String>;
    /// Dequeues the oldest element of `folder`.
    fn bc_dequeue(&mut self, folder: &str) -> Option<String>;
    /// Reads the most recently pushed element without removing it.
    fn bc_peek(&mut self, folder: &str) -> Option<String>;
    /// All elements of `folder`, oldest first.
    fn bc_list(&mut self, folder: &str) -> Vec<String>;
    /// Removes `folder` entirely.
    fn bc_delete(&mut self, folder: &str);

    // --- site-local cabinets -------------------------------------------------

    /// Appends `value` to `folder` of the site-local cabinet `cabinet`.
    fn cab_append(&mut self, cabinet: &str, folder: &str, value: &str);
    /// Whether `folder` of `cabinet` contains `value`.
    fn cab_contains(&mut self, cabinet: &str, folder: &str, value: &str) -> bool;
    /// All elements of `folder` in `cabinet`, oldest first.
    fn cab_list(&mut self, cabinet: &str, folder: &str) -> Vec<String>;
    /// Pops the most recent element of `folder` in `cabinet`.
    fn cab_pop(&mut self, cabinet: &str, folder: &str) -> Option<String>;

    // --- agents and migration ------------------------------------------------

    /// Meets a co-located agent, passing the current briefcase; folders the
    /// callee returns replace/merge into the current briefcase.
    fn meet(&mut self, agent: &str) -> Result<(), String>;
    /// Requests migration: the current briefcase (including its CODE folder)
    /// is shipped to `site` and handed to `contact` there after this meet ends.
    fn move_to(&mut self, site: u64, contact: &str) -> Result<(), String>;
    /// Ships copies of the named folders to `contact` at `site` (courier-style).
    fn send_remote(&mut self, site: u64, contact: &str, folders: &[String]) -> Result<(), String>;

    // --- environment ---------------------------------------------------------

    /// The site the agent is executing at.
    fn site(&self) -> u64;
    /// Total number of sites in the system.
    fn site_count(&self) -> u64;
    /// Neighbouring sites of the current site.
    fn neighbors(&self) -> Vec<u64>;
    /// A deterministic random value in `[0, bound)`; `bound = 0` yields 0.
    fn random(&mut self, bound: u64) -> u64;
    /// Current simulated time in microseconds.
    fn now_micros(&self) -> u64;
    /// Emits a log/trace line.
    fn log(&mut self, message: &str);
}

/// A host that refuses agent/migration operations and ignores logs.
///
/// Useful for evaluating pure scripts (expression-only agents, parsing tests).
#[derive(Debug, Default)]
pub struct NullHost;

impl ScriptHost for NullHost {
    fn bc_put(&mut self, _folder: &str, _value: &str) {}
    fn bc_push(&mut self, _folder: &str, _value: &str) {}
    fn bc_pop(&mut self, _folder: &str) -> Option<String> {
        None
    }
    fn bc_dequeue(&mut self, _folder: &str) -> Option<String> {
        None
    }
    fn bc_peek(&mut self, _folder: &str) -> Option<String> {
        None
    }
    fn bc_list(&mut self, _folder: &str) -> Vec<String> {
        Vec::new()
    }
    fn bc_delete(&mut self, _folder: &str) {}
    fn cab_append(&mut self, _cabinet: &str, _folder: &str, _value: &str) {}
    fn cab_contains(&mut self, _cabinet: &str, _folder: &str, _value: &str) -> bool {
        false
    }
    fn cab_list(&mut self, _cabinet: &str, _folder: &str) -> Vec<String> {
        Vec::new()
    }
    fn cab_pop(&mut self, _cabinet: &str, _folder: &str) -> Option<String> {
        None
    }
    fn meet(&mut self, agent: &str) -> Result<(), String> {
        Err(format!("no host: cannot meet '{agent}'"))
    }
    fn move_to(&mut self, _site: u64, _contact: &str) -> Result<(), String> {
        Err("no host: cannot migrate".into())
    }
    fn send_remote(
        &mut self,
        _site: u64,
        _contact: &str,
        _folders: &[String],
    ) -> Result<(), String> {
        Err("no host: cannot send".into())
    }
    fn site(&self) -> u64 {
        0
    }
    fn site_count(&self) -> u64 {
        1
    }
    fn neighbors(&self) -> Vec<u64> {
        Vec::new()
    }
    fn random(&mut self, _bound: u64) -> u64 {
        0
    }
    fn now_micros(&self) -> u64 {
        0
    }
    fn log(&mut self, _message: &str) {}
}

/// An in-memory fake host used by the interpreter's tests.
#[derive(Debug, Default)]
pub struct RecordingHost {
    /// The simulated briefcase: folder → elements (oldest first).
    pub briefcase: BTreeMap<String, Vec<String>>,
    /// Simulated cabinets: (cabinet, folder) → elements.
    pub cabinets: BTreeMap<(String, String), Vec<String>>,
    /// Calls recorded in order.
    pub calls: Vec<HostCall>,
    /// The value returned by [`ScriptHost::site`].
    pub site: u64,
    /// The value returned by [`ScriptHost::site_count`].
    pub site_count: u64,
    /// The value returned by [`ScriptHost::neighbors`].
    pub neighbors: Vec<u64>,
    /// Deterministic counter backing `random`.
    pub random_counter: u64,
    /// Names of agents `meet` will accept; others error.
    pub known_agents: Vec<String>,
}

impl RecordingHost {
    /// Creates a recording host for a 4-site system with two neighbours.
    pub fn new() -> Self {
        RecordingHost {
            site: 0,
            site_count: 4,
            neighbors: vec![1, 2],
            known_agents: vec!["rexec".into(), "courier".into(), "helper".into()],
            ..Default::default()
        }
    }

    /// All log lines recorded so far.
    pub fn logs(&self) -> Vec<&str> {
        self.calls
            .iter()
            .filter_map(|c| match c {
                HostCall::Log(m) => Some(m.as_str()),
                _ => None,
            })
            .collect()
    }
}

impl ScriptHost for RecordingHost {
    fn bc_put(&mut self, folder: &str, value: &str) {
        self.briefcase.insert(folder.into(), vec![value.into()]);
    }
    fn bc_push(&mut self, folder: &str, value: &str) {
        self.briefcase
            .entry(folder.into())
            .or_default()
            .push(value.into());
    }
    fn bc_pop(&mut self, folder: &str) -> Option<String> {
        self.briefcase.get_mut(folder)?.pop()
    }
    fn bc_dequeue(&mut self, folder: &str) -> Option<String> {
        let v = self.briefcase.get_mut(folder)?;
        if v.is_empty() {
            None
        } else {
            Some(v.remove(0))
        }
    }
    fn bc_peek(&mut self, folder: &str) -> Option<String> {
        self.briefcase.get(folder)?.last().cloned()
    }
    fn bc_list(&mut self, folder: &str) -> Vec<String> {
        self.briefcase.get(folder).cloned().unwrap_or_default()
    }
    fn bc_delete(&mut self, folder: &str) {
        self.briefcase.remove(folder);
    }
    fn cab_append(&mut self, cabinet: &str, folder: &str, value: &str) {
        self.cabinets
            .entry((cabinet.into(), folder.into()))
            .or_default()
            .push(value.into());
    }
    fn cab_contains(&mut self, cabinet: &str, folder: &str, value: &str) -> bool {
        self.cabinets
            .get(&(cabinet.into(), folder.into()))
            .map(|v| v.iter().any(|e| e == value))
            .unwrap_or(false)
    }
    fn cab_list(&mut self, cabinet: &str, folder: &str) -> Vec<String> {
        self.cabinets
            .get(&(cabinet.into(), folder.into()))
            .cloned()
            .unwrap_or_default()
    }
    fn cab_pop(&mut self, cabinet: &str, folder: &str) -> Option<String> {
        self.cabinets
            .get_mut(&(cabinet.into(), folder.into()))?
            .pop()
    }
    fn meet(&mut self, agent: &str) -> Result<(), String> {
        self.calls.push(HostCall::Meet(agent.into()));
        if self.known_agents.iter().any(|a| a == agent) {
            Ok(())
        } else {
            Err(format!("no agent named '{agent}'"))
        }
    }
    fn move_to(&mut self, site: u64, contact: &str) -> Result<(), String> {
        if site >= self.site_count {
            return Err(format!("no such site {site}"));
        }
        self.calls.push(HostCall::MoveTo(site, contact.into()));
        Ok(())
    }
    fn send_remote(&mut self, site: u64, contact: &str, folders: &[String]) -> Result<(), String> {
        if site >= self.site_count {
            return Err(format!("no such site {site}"));
        }
        self.calls
            .push(HostCall::SendRemote(site, contact.into(), folders.to_vec()));
        Ok(())
    }
    fn site(&self) -> u64 {
        self.site
    }
    fn site_count(&self) -> u64 {
        self.site_count
    }
    fn neighbors(&self) -> Vec<u64> {
        self.neighbors.clone()
    }
    fn random(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.random_counter += 1;
        self.random_counter % bound
    }
    fn now_micros(&self) -> u64 {
        123_000
    }
    fn log(&mut self, message: &str) {
        self.calls.push(HostCall::Log(message.into()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_host_briefcase_behaviour() {
        let mut h = RecordingHost::new();
        h.bc_push("SITES", "1");
        h.bc_push("SITES", "2");
        assert_eq!(h.bc_peek("SITES").as_deref(), Some("2"));
        assert_eq!(h.bc_dequeue("SITES").as_deref(), Some("1"));
        assert_eq!(h.bc_pop("SITES").as_deref(), Some("2"));
        assert!(h.bc_pop("SITES").is_none());
        h.bc_put("HOST", "3");
        h.bc_put("HOST", "4");
        assert_eq!(h.bc_list("HOST"), vec!["4"]);
        h.bc_delete("HOST");
        assert!(h.bc_list("HOST").is_empty());
    }

    #[test]
    fn recording_host_cabinets_and_calls() {
        let mut h = RecordingHost::new();
        h.cab_append("local", "VISITED", "site0");
        assert!(h.cab_contains("local", "VISITED", "site0"));
        assert!(!h.cab_contains("local", "VISITED", "site9"));
        assert_eq!(h.cab_list("local", "VISITED"), vec!["site0"]);
        assert_eq!(h.cab_pop("local", "VISITED").as_deref(), Some("site0"));

        assert!(h.meet("rexec").is_ok());
        assert!(h.meet("ghost").is_err());
        assert!(h.move_to(2, "ag_tac").is_ok());
        assert!(h.move_to(99, "ag_tac").is_err());
        h.log("hello");
        assert_eq!(h.logs(), vec!["hello"]);
        assert_eq!(h.calls.len(), 4);
    }

    #[test]
    fn null_host_refuses_agent_operations() {
        let mut h = NullHost;
        assert!(h.meet("x").is_err());
        assert!(h.move_to(0, "x").is_err());
        assert!(h.send_remote(0, "x", &[]).is_err());
        assert_eq!(h.site_count(), 1);
        assert_eq!(h.random(10), 0);
        h.bc_push("F", "v");
        assert!(h.bc_list("F").is_empty());
    }
}
