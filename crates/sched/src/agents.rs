//! The scheduling service's agents: broker, monitor, ticket and worker.
//!
//! The prototype's scheduling service (§6) "assigns to processors based on
//! load" and "uses four different agents … the broker, another … monitoring
//! the status of a site and reporting that to the brokers, one is a courier,
//! and one issues tickets to allow access to the service."  The courier is the
//! generic one from `tacoma-agents`; the other three are here, together with
//! the worker (provider) agent that actually executes jobs.
//!
//! Briefcase conventions:
//!
//! * submit a job to the broker: `REQUEST`="submit", `JOB`=id, `JOB_SIZE`=work
//!   in milliseconds at capacity 1.0;
//! * ask the broker for a provider without dispatching: `REQUEST`="lookup";
//! * monitors report with `REQUEST`="report" plus a [`LoadReport`];
//! * workers accept jobs only when a `TICKET` folder is present (issued by the
//!   ticket agent at the broker's site).

use crate::load::{LoadReport, ReportDb};
use crate::policy::PlacementPolicy;
use std::collections::VecDeque;
use tacoma_core::prelude::*;

/// Folder holding the request verb for broker meets.
pub const REQUEST: &str = "REQUEST";
/// Folder holding a job identifier.
pub const JOB: &str = "JOB";
/// Folder holding the job's size in milliseconds of work at capacity 1.0.
pub const JOB_SIZE: &str = "JOB_SIZE";
/// Folder holding an admission ticket.
pub const TICKET_FOLDER: &str = "TICKET";
/// Folder naming the provider chosen by a lookup.
pub const PROVIDER: &str = "PROVIDER";
/// Cabinet where workers record completed jobs.
pub const JOBS_CABINET: &str = "jobs";
/// Folder (in the jobs cabinet) holding completion records `id:wait_us:finish_us`.
pub const DONE: &str = "DONE";

/// How many monitor periods a load report stays trusted: the default
/// report TTL handed to brokers is `report_period × STALE_REPORT_PERIODS`.
pub const STALE_REPORT_PERIODS: u64 = 4;

/// Parses an incoming load-report briefcase (shared by both brokers).
pub(crate) fn parse_report(bc: &Briefcase) -> Result<LoadReport, TacomaError> {
    LoadReport::from_briefcase(bc)
        .ok_or_else(|| TacomaError::bad_folder("LOAD_SITE", "malformed load report"))
}

/// The shared submit tail: obtains an admission ticket from the co-located
/// ticket agent, attaches it, strips the request verb, and dispatches the
/// job briefcase to the chosen provider's worker.
pub(crate) fn dispatch_with_ticket(
    ctx: &mut MeetCtx<'_>,
    mut bc: Briefcase,
    chosen: SiteId,
) -> Result<(), TacomaError> {
    let ticket_reply = ctx.meet_local(&AgentName::new(wellknown::TICKET), Briefcase::new())?;
    let ticket = ticket_reply
        .folder(TICKET_FOLDER)
        .cloned()
        .ok_or_else(|| TacomaError::missing(TICKET_FOLDER))?;
    bc.put(TICKET_FOLDER, ticket);
    bc.take(REQUEST);
    ctx.remote_meet(chosen, AgentName::new("worker"), bc, TransportKind::Tcp);
    Ok(())
}

/// The matchmaking/scheduling broker (§4).
pub struct BrokerAgent {
    policy: PlacementPolicy,
    reports: ReportDb,
    rr_counter: u64,
    jobs_placed: u64,
    /// Half-life for the staleness decay the sampled policy applies.
    decay_half_life: Duration,
}

impl BrokerAgent {
    /// Creates a broker using the given placement policy, with a default
    /// 2-second report TTL and 500 ms decay half-life; callers that know
    /// their monitor period should use [`BrokerAgent::with_staleness`] to
    /// derive both from it (see [`STALE_REPORT_PERIODS`]).
    pub fn new(policy: PlacementPolicy) -> Self {
        BrokerAgent {
            policy,
            reports: ReportDb::new(Duration::from_millis(2_000)),
            rr_counter: 0,
            jobs_placed: 0,
            decay_half_life: Duration::from_millis(500),
        }
    }

    /// Sets the report TTL and the decay half-life (builder style).
    pub fn with_staleness(mut self, report_ttl: Duration, decay_half_life: Duration) -> Self {
        self.reports.set_report_ttl(report_ttl);
        self.decay_half_life = decay_half_life;
        self
    }

    /// Number of jobs this broker has placed.
    pub fn jobs_placed(&self) -> u64 {
        self.jobs_placed
    }
}

impl Agent for BrokerAgent {
    fn name(&self) -> AgentName {
        AgentName::new(wellknown::BROKER)
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        let request = bc
            .peek_string(REQUEST)
            .ok_or_else(|| TacomaError::missing(REQUEST))?;
        match request.as_str() {
            "report" => {
                let report = parse_report(&bc)?;
                self.reports.ingest(report, ctx.now().micros());
                Ok(Briefcase::new())
            }
            "lookup" | "submit" => {
                let now = ctx.now().micros();
                let reports = self.reports.fresh(now, |s| ctx.site_is_up(s));
                let chosen = self
                    .policy
                    .choose(
                        &reports,
                        now,
                        self.decay_half_life.micros(),
                        ctx.rng(),
                        &mut self.rr_counter,
                    )
                    .ok_or_else(|| {
                        TacomaError::Refused(
                            "no eligible provider (none registered, alive and fresh)".into(),
                        )
                    })?;
                let mut reply = Briefcase::new();
                reply.put_string(PROVIDER, chosen.0.to_string());
                if request == "submit" {
                    dispatch_with_ticket(ctx, bc, chosen)?;
                    // Optimistically bump the chosen provider's queue so a burst
                    // of submissions spreads even before the next report.
                    self.reports.bump(chosen);
                    self.jobs_placed += 1;
                }
                Ok(reply)
            }
            other => Err(TacomaError::Refused(format!(
                "unknown broker request '{other}'"
            ))),
        }
    }
}

/// The load monitor installed at every provider site.
///
/// On installation it starts a periodic timer; every period it samples the
/// co-located worker's queue and reports to the broker site.  A meet carrying
/// a [`wellknown::REHOME`] folder (the new broker's site id) re-points the
/// monitor — that is how a failed-over broker's adopter takes custody of the
/// crashed broker's providers.
pub struct MonitorAgent {
    broker_site: SiteId,
    period: Duration,
    capacity: f64,
}

impl MonitorAgent {
    /// Creates a monitor reporting to `broker_site` every `period`.
    pub fn new(broker_site: SiteId, period: Duration, capacity: f64) -> Self {
        MonitorAgent {
            broker_site,
            period,
            capacity,
        }
    }

    fn sample_and_report(&self, ctx: &mut MeetCtx<'_>) {
        let mut query = Briefcase::new();
        query.put_string("QUERY", "load");
        let queue_len = match ctx.meet_local(&AgentName::new("worker"), query) {
            Ok(reply) => reply.peek_u64("QUEUE_LEN").unwrap_or(0),
            Err(_) => 0,
        };
        let report = LoadReport {
            site: ctx.site(),
            queue_len,
            queue_cost: 0.0,
            capacity: self.capacity,
            at_micros: ctx.now().micros(),
        };
        let mut bc = report.to_briefcase();
        bc.put_string(REQUEST, "report");
        ctx.remote_meet(
            self.broker_site,
            AgentName::new(wellknown::BROKER),
            bc,
            TransportKind::Tcp,
        );
    }
}

impl Agent for MonitorAgent {
    fn name(&self) -> AgentName {
        AgentName::new(wellknown::MONITOR)
    }

    fn on_install(&mut self, ctx: &mut MeetCtx<'_>) {
        // Report immediately so the broker knows this provider exists, then
        // keep reporting on the period.
        self.sample_and_report(ctx);
        ctx.schedule(
            AgentName::new(wellknown::MONITOR),
            1,
            self.period,
            Briefcase::new(),
        );
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        if let Some(new_broker) = bc
            .peek_string(wellknown::REHOME)
            .and_then(|s| s.parse::<u32>().ok())
        {
            // Failover: report to the adopting broker from now on, and do so
            // immediately so the adopter learns this provider exists.
            self.broker_site = SiteId(new_broker);
            self.sample_and_report(ctx);
            return Ok(Briefcase::new());
        }
        if bc.contains(wellknown::TIMER) {
            self.sample_and_report(ctx);
            ctx.schedule(
                AgentName::new(wellknown::MONITOR),
                1,
                self.period,
                Briefcase::new(),
            );
        }
        Ok(Briefcase::new())
    }
}

/// The admission-ticket agent of the scheduling service.
#[derive(Debug, Default)]
pub struct TicketAgent {
    issued: u64,
}

impl TicketAgent {
    /// Creates the agent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tickets issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl Agent for TicketAgent {
    fn name(&self) -> AgentName {
        AgentName::new(wellknown::TICKET)
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, _bc: Briefcase) -> MeetOutcome {
        self.issued += 1;
        let mut reply = Briefcase::new();
        reply.put_string(
            TICKET_FOLDER,
            format!("ticket-{}-{}", ctx.site(), self.issued),
        );
        Ok(reply)
    }
}

/// A service provider: executes jobs one at a time at a configured capacity.
pub struct WorkerAgent {
    capacity: f64,
    queue: VecDeque<QueuedJob>,
    next_timer_key: u64,
    executed: u64,
}

#[derive(Debug, Clone)]
struct QueuedJob {
    id: String,
    size_ms: u64,
    enqueued_at: u64,
}

impl WorkerAgent {
    /// Creates a worker with the given capacity (1.0 = nominal speed).
    pub fn new(capacity: f64) -> Self {
        WorkerAgent {
            capacity: capacity.max(0.01),
            queue: VecDeque::new(),
            next_timer_key: 1,
            executed: 0,
        }
    }

    /// Jobs completed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    fn service_time(&self, size_ms: u64) -> Duration {
        Duration::from_micros(((size_ms as f64 * 1000.0) / self.capacity) as u64)
    }

    fn start_head_job(&mut self, ctx: &mut MeetCtx<'_>) {
        if let Some(head) = self.queue.front() {
            let delay = self.service_time(head.size_ms);
            let key = self.next_timer_key;
            self.next_timer_key += 1;
            ctx.schedule(AgentName::new("worker"), key, delay, Briefcase::new());
        }
    }
}

impl Agent for WorkerAgent {
    fn name(&self) -> AgentName {
        AgentName::new("worker")
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        // Load query from the monitor.
        if bc.peek_string("QUERY").as_deref() == Some("load") {
            let mut reply = Briefcase::new();
            reply.put_u64("QUEUE_LEN", self.queue.len() as u64);
            return Ok(reply);
        }
        // Timer: the job at the head of the queue finished.
        if bc.contains(wellknown::TIMER) {
            if let Some(done) = self.queue.pop_front() {
                self.executed += 1;
                let now = ctx.now().micros();
                let wait = now
                    .saturating_sub(done.enqueued_at)
                    .saturating_sub(self.service_time(done.size_ms).micros());
                ctx.cabinet(JOBS_CABINET)
                    .append_str(DONE, format!("{}:{}:{}", done.id, wait, now));
                self.start_head_job(ctx);
            }
            return Ok(Briefcase::new());
        }
        // Otherwise: a job submission.
        let job_id = bc
            .peek_string(JOB)
            .ok_or_else(|| TacomaError::missing(JOB))?;
        let size_ms = bc
            .peek_string(JOB_SIZE)
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| TacomaError::bad_folder(JOB_SIZE, "missing or not a number"))?;
        if !bc.contains(TICKET_FOLDER) {
            return Err(TacomaError::Refused("no admission ticket".into()));
        }
        let was_idle = self.queue.is_empty();
        self.queue.push_back(QueuedJob {
            id: job_id,
            size_ms,
            enqueued_at: ctx.now().micros(),
        });
        if was_idle {
            self.start_head_job(ctx);
        }
        Ok(Briefcase::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_core::TacomaSystem;
    use tacoma_net::{LinkSpec, Topology};

    fn worker_system(capacity: f64) -> TacomaSystem {
        let mut sys = TacomaSystem::new(Topology::full_mesh(1, LinkSpec::default()), 1);
        sys.register_agent(SiteId(0), Box::new(WorkerAgent::new(capacity)));
        sys.register_agent(SiteId(0), Box::new(TicketAgent::new()));
        sys
    }

    fn job_briefcase(id: &str, size_ms: u64, ticketed: bool) -> Briefcase {
        let mut bc = Briefcase::new();
        bc.put_string(JOB, id);
        bc.put_string(JOB_SIZE, size_ms.to_string());
        if ticketed {
            bc.put_string(TICKET_FOLDER, "t");
        }
        bc
    }

    #[test]
    fn worker_requires_a_ticket() {
        let mut sys = worker_system(1.0);
        let err = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new("worker"),
                job_briefcase("j", 10, false),
            )
            .unwrap_err();
        assert!(matches!(err, TacomaError::Refused(_)));
    }

    #[test]
    fn worker_executes_jobs_in_fifo_order_and_records_them() {
        let mut sys = worker_system(2.0);
        for i in 0..3 {
            sys.inject_meet(
                SiteId(0),
                AgentName::new("worker"),
                job_briefcase(&format!("job{i}"), 100, true),
            );
        }
        sys.run_until_quiescent(10_000);
        let cab = sys.place(SiteId(0)).cabinets().get(JOBS_CABINET).unwrap();
        let done = cab.folder_ref(DONE).unwrap().strings();
        assert_eq!(done.len(), 3);
        assert!(done[0].starts_with("job0:"));
        assert!(done[2].starts_with("job2:"));
        // Later jobs waited longer.
        let wait = |s: &str| s.split(':').nth(1).unwrap().parse::<u64>().unwrap();
        assert!(wait(&done[2]) >= wait(&done[1]));
        assert!(wait(&done[1]) >= wait(&done[0]));
    }

    #[test]
    fn faster_workers_finish_sooner() {
        let mut slow = worker_system(1.0);
        let mut fast = worker_system(4.0);
        for sys in [&mut slow, &mut fast] {
            sys.inject_meet(
                SiteId(0),
                AgentName::new("worker"),
                job_briefcase("j", 200, true),
            );
            sys.run_until_quiescent(10_000);
        }
        assert!(fast.now() < slow.now());
    }

    #[test]
    fn worker_answers_load_queries() {
        let mut sys = worker_system(1.0);
        let mut q = Briefcase::new();
        q.put_string("QUERY", "load");
        let reply = sys
            .try_direct_meet(SiteId(0), &AgentName::new("worker"), q)
            .unwrap();
        assert_eq!(reply.peek_u64("QUEUE_LEN"), Some(0));
    }

    #[test]
    fn ticket_agent_issues_unique_tickets() {
        let mut sys = worker_system(1.0);
        let a = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::TICKET),
                Briefcase::new(),
            )
            .unwrap();
        let b = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::TICKET),
                Briefcase::new(),
            )
            .unwrap();
        assert_ne!(a.peek_string(TICKET_FOLDER), b.peek_string(TICKET_FOLDER));
    }

    #[test]
    fn broker_places_jobs_on_registered_providers() {
        // Site 0: broker + ticket.  Sites 1, 2: workers + monitors.
        let mut sys = TacomaSystem::new(Topology::full_mesh(3, LinkSpec::default()), 2);
        sys.register_agent(
            SiteId(0),
            Box::new(BrokerAgent::new(PlacementPolicy::LoadBased)),
        );
        sys.register_agent(SiteId(0), Box::new(TicketAgent::new()));
        for s in [1u32, 2] {
            sys.register_agent(SiteId(s), Box::new(WorkerAgent::new(1.0)));
        }
        // Monitors register their providers with the broker via their install hook.
        sys.register_agent(
            SiteId(1),
            Box::new(MonitorAgent::new(SiteId(0), Duration::from_millis(50), 1.0)),
        );
        sys.register_agent(
            SiteId(2),
            Box::new(MonitorAgent::new(SiteId(0), Duration::from_millis(50), 4.0)),
        );
        // Let the initial reports reach the broker.
        sys.run_for(Duration::from_millis(20));

        // Submit four jobs.
        for i in 0..4 {
            let mut bc = job_briefcase(&format!("j{i}"), 100, false);
            bc.put_string(REQUEST, "submit");
            sys.inject_meet(SiteId(0), AgentName::new(wellknown::BROKER), bc);
        }
        sys.run_for(Duration::from_secs(5));

        let total_done: usize = [1u32, 2]
            .iter()
            .map(|s| {
                sys.place(SiteId(*s))
                    .cabinets()
                    .get(JOBS_CABINET)
                    .and_then(|c| c.folder_ref(DONE).map(|f| f.len()))
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(total_done, 4, "all submitted jobs complete somewhere");
        assert_eq!(sys.stats().meets_failed, 0);
    }

    #[test]
    fn stale_reports_expire_instead_of_being_trusted_forever() {
        use tacoma_net::SimTime;
        // Two providers report; then site 2 is partitioned away.  It is still
        // *up* (liveness filtering does not catch it), but its reports stop
        // arriving — after the TTL the broker must stop placing onto it
        // rather than trusting the frozen report forever.
        let mut sys = TacomaSystem::new(Topology::full_mesh(3, LinkSpec::default()), 3);
        sys.register_agent(
            SiteId(0),
            Box::new(
                BrokerAgent::new(PlacementPolicy::LoadBased)
                    .with_staleness(Duration::from_millis(80), Duration::from_millis(20)),
            ),
        );
        sys.register_agent(SiteId(0), Box::new(TicketAgent::new()));
        for s in [1u32, 2] {
            sys.register_agent(SiteId(s), Box::new(WorkerAgent::new(1.0)));
            sys.register_agent(
                SiteId(s),
                Box::new(MonitorAgent::new(SiteId(0), Duration::from_millis(20), 1.0)),
            );
        }
        sys.run_for(Duration::from_millis(50));
        sys.net_mut().partition(&[SiteId(2)]);
        assert!(sys.net().is_up(SiteId(2)), "partitioned, not dead");
        // Monitors keep ticking; site 2's reports no longer reach the broker.
        sys.run_until(SimTime::ZERO + Duration::from_millis(400));
        let mut bc = Briefcase::new();
        bc.put_string(REQUEST, "lookup");
        let reply = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::BROKER), bc)
            .unwrap();
        assert_eq!(
            reply.peek_string(PROVIDER).as_deref(),
            Some("1"),
            "the unreachable provider's stale report must have expired"
        );
    }

    #[test]
    fn rehome_re_points_a_monitor_at_a_new_broker() {
        // Broker at site 0 and a spare at site 2; the monitor at site 1
        // starts on broker 0 and is rehomed to broker 2 mid-run.
        let mut sys = TacomaSystem::new(Topology::full_mesh(3, LinkSpec::default()), 4);
        for b in [0u32, 2] {
            sys.register_agent(
                SiteId(b),
                Box::new(BrokerAgent::new(PlacementPolicy::LoadBased)),
            );
            sys.register_agent(SiteId(b), Box::new(TicketAgent::new()));
        }
        sys.register_agent(SiteId(1), Box::new(WorkerAgent::new(1.0)));
        sys.register_agent(
            SiteId(1),
            Box::new(MonitorAgent::new(SiteId(0), Duration::from_millis(20), 1.0)),
        );
        sys.run_for(Duration::from_millis(30));
        let mut rehome = Briefcase::new();
        rehome.put_string(wellknown::REHOME, "2");
        sys.inject_meet(SiteId(1), AgentName::new(wellknown::MONITOR), rehome);
        sys.run_for(Duration::from_millis(50));
        // The new broker can now place onto the provider; lookups there work.
        let mut bc = Briefcase::new();
        bc.put_string(REQUEST, "lookup");
        let reply = sys
            .try_direct_meet(SiteId(2), &AgentName::new(wellknown::BROKER), bc)
            .unwrap();
        assert_eq!(reply.peek_string(PROVIDER).as_deref(), Some("1"));
    }

    #[test]
    fn broker_with_no_providers_refuses() {
        let mut sys = TacomaSystem::new(Topology::full_mesh(1, LinkSpec::default()), 2);
        sys.register_agent(
            SiteId(0),
            Box::new(BrokerAgent::new(PlacementPolicy::Random)),
        );
        let mut bc = Briefcase::new();
        bc.put_string(REQUEST, "lookup");
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::BROKER), bc)
            .unwrap_err();
        assert!(matches!(err, TacomaError::Refused(_)));
        // Unknown verbs are refused too.
        let mut bc = Briefcase::new();
        bc.put_string(REQUEST, "dance");
        assert!(sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::BROKER), bc)
            .is_err());
    }
}
