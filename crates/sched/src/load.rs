//! Load reports: what monitors tell brokers about provider sites, and the
//! staleness-aware report database brokers keep them in.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tacoma_core::Briefcase;
use tacoma_net::Duration;
use tacoma_util::SiteId;

/// One monitoring sample for a provider site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// The provider site this report describes.
    pub site: SiteId,
    /// Jobs currently queued (including the one in service).
    pub queue_len: u64,
    /// Expected outstanding *work* in kilosteps (sum of the statically
    /// proven step bounds of queued jobs, ÷1000).  Zero means "unknown /
    /// cost-blind", in which case placement falls back to the job count —
    /// so legacy reports and cost-aware reports share one ordering.
    pub queue_cost: f64,
    /// Relative processing capacity (jobs per simulated second at nominal size).
    pub capacity: f64,
    /// Simulated time (microseconds) the sample was taken.
    pub at_micros: u64,
}

impl LoadReport {
    /// The queue measure placement compares: expected cost when known
    /// (`queue_cost > 0`), job count otherwise.
    pub fn effective_queue(&self) -> f64 {
        if self.queue_cost > 0.0 {
            self.queue_cost
        } else {
            self.queue_len as f64
        }
    }

    /// Expected wait for a newly arriving job, in seconds: effective queue
    /// (cost-weighted when known) divided by capacity.  Lower is better;
    /// brokers pick the minimum.
    ///
    /// A non-positive or NaN capacity describes a provider that cannot make
    /// progress, so its wait is infinite — never NaN, which would corrupt any
    /// ordering built on it.
    pub fn expected_wait(&self) -> f64 {
        if self.capacity.is_nan() || self.capacity <= 0.0 {
            f64::INFINITY
        } else {
            self.effective_queue() / self.capacity
        }
    }

    /// Age of this report at `now_micros` (0 when the clock reads earlier
    /// than the sample, which can happen across a briefcase round-trip).
    pub fn age_micros(&self, now_micros: u64) -> u64 {
        now_micros.saturating_sub(self.at_micros)
    }

    /// Whether this report is still fresh at `now_micros` under a TTL.
    pub fn is_fresh(&self, now_micros: u64, ttl_micros: u64) -> bool {
        self.age_micros(now_micros) <= ttl_micros
    }

    /// Staleness-decayed expected wait: the reported queue estimate loses
    /// confidence as the report ages, doubling (plus one phantom job) once
    /// per `half_life_micros`.  Effective queue = `(q + 1)·2^(age/hl) − 1`,
    /// so an idle-but-stale report ranks below an idle-and-fresh one, and a
    /// dead provider's last report decays out of contention instead of being
    /// trusted forever.  `half_life_micros == 0` disables decay.
    pub fn decayed_wait(&self, now_micros: u64, half_life_micros: u64) -> f64 {
        let raw = self.expected_wait();
        if half_life_micros == 0 || !raw.is_finite() {
            return raw;
        }
        let age = self.age_micros(now_micros) as f64 / half_life_micros as f64;
        // Cap the exponent: beyond ~2^32 half-lives the report is hopeless
        // anyway and overflow to infinity would defeat the finite filter.
        let m = 2f64.powf(age.min(32.0));
        ((self.effective_queue() + 1.0) * m - 1.0) / self.capacity
    }

    /// Serializes the report into briefcase folders (strings, so TacoScript
    /// agents can also read them).  The cost field is written only when
    /// non-zero, so cost-blind reports keep their historical wire shape.
    pub fn to_briefcase(&self) -> Briefcase {
        let mut bc = Briefcase::new();
        bc.put_string("LOAD_SITE", self.site.0.to_string());
        bc.put_string("LOAD_QUEUE", self.queue_len.to_string());
        if self.queue_cost != 0.0 {
            bc.put_string("LOAD_COST", format!("{}", self.queue_cost));
        }
        bc.put_string("LOAD_CAPACITY", format!("{}", self.capacity));
        bc.put_string("LOAD_AT", self.at_micros.to_string());
        bc
    }

    /// Parses a report out of briefcase folders, if all fields are present.
    /// A missing `LOAD_COST` folder reads as 0 (cost-blind).
    pub fn from_briefcase(bc: &Briefcase) -> Option<LoadReport> {
        Some(LoadReport {
            site: SiteId(bc.peek_string("LOAD_SITE")?.parse().ok()?),
            queue_len: bc.peek_string("LOAD_QUEUE")?.parse().ok()?,
            queue_cost: bc
                .peek_string("LOAD_COST")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.0),
            capacity: bc.peek_string("LOAD_CAPACITY")?.parse().ok()?,
            at_micros: bc.peek_string("LOAD_AT")?.parse().ok()?,
        })
    }
}

/// A broker's load-report database: the latest report per provider, with
/// TTL-based staleness handling shared by the single [`crate::BrokerAgent`]
/// and the federated broker.
///
/// Placement always reads through [`ReportDb::fresh`], so expired reports
/// never attract jobs regardless of when they are physically purged; the
/// purge itself is amortized (it runs when the map doubles past a watermark,
/// not on every ingest) so report ingest stays O(log P) amortized instead of
/// the O(P) per report a retain-per-ingest costs at 1024 sites.
#[derive(Debug, Clone)]
pub struct ReportDb {
    reports: BTreeMap<SiteId, LoadReport>,
    report_ttl: Duration,
    purge_watermark: usize,
}

impl ReportDb {
    /// Floor for the purge watermark, so small fleets never purge.
    const MIN_PURGE_WATERMARK: usize = 16;

    /// Creates an empty database trusting reports for `report_ttl`.
    pub fn new(report_ttl: Duration) -> Self {
        ReportDb {
            reports: BTreeMap::new(),
            report_ttl,
            purge_watermark: Self::MIN_PURGE_WATERMARK,
        }
    }

    /// The TTL this database trusts reports for.
    pub fn report_ttl(&self) -> Duration {
        self.report_ttl
    }

    /// Replaces the TTL (builder wiring).
    pub fn set_report_ttl(&mut self, report_ttl: Duration) {
        self.report_ttl = report_ttl;
    }

    /// Number of reports currently held (fresh or not yet purged).
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the database holds no reports at all.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Stores a report, keeping only the per-site latest, and expires dead
    /// providers' stale reports once the map doubles past the watermark so
    /// the database stays bounded without a full scan per ingest.
    pub fn ingest(&mut self, report: LoadReport, now_micros: u64) {
        self.reports.insert(report.site, report);
        if self.reports.len() >= self.purge_watermark {
            let ttl = self.report_ttl.micros();
            self.reports.retain(|_, r| r.is_fresh(now_micros, ttl));
            self.purge_watermark = (self.reports.len() * 2).max(Self::MIN_PURGE_WATERMARK);
        }
    }

    /// The reports placement may trust: fresh within the TTL and from a
    /// provider the caller's liveness view considers up.
    pub fn fresh(&self, now_micros: u64, is_up: impl Fn(SiteId) -> bool) -> Vec<LoadReport> {
        let ttl = self.report_ttl.micros();
        self.reports
            .values()
            .copied()
            .filter(|r| is_up(r.site) && r.is_fresh(now_micros, ttl))
            .collect()
    }

    /// Every still-up provider's latest report, however old — the
    /// best-effort fallback a broker with *no* fresh information uses
    /// rather than dropping a job.
    pub fn live(&self, is_up: impl Fn(SiteId) -> bool) -> Vec<LoadReport> {
        self.reports
            .values()
            .copied()
            .filter(|r| is_up(r.site))
            .collect()
    }

    /// Optimistically bumps a provider's queue after placing a job on it,
    /// so a burst spreads even before the next report arrives.
    pub fn bump(&mut self, site: SiteId) {
        if let Some(r) = self.reports.get_mut(&site) {
            r.queue_len += 1;
        }
    }

    /// Cost-aware variant of [`ReportDb::bump`]: additionally charges the
    /// placed job's expected cost (kilosteps) to the provider's outstanding
    /// work, so heavy jobs repel the next placement harder than light ones.
    pub fn bump_cost(&mut self, site: SiteId, cost: f64) {
        if let Some(r) = self.reports.get_mut(&site) {
            r.queue_len += 1;
            if cost > 0.0 {
                r.queue_cost += cost;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_wait_orders_sites_sensibly() {
        let idle_fast = LoadReport {
            site: SiteId(0),
            queue_len: 0,
            queue_cost: 0.0,
            capacity: 4.0,
            at_micros: 0,
        };
        let busy_fast = LoadReport {
            site: SiteId(1),
            queue_len: 8,
            queue_cost: 0.0,
            capacity: 4.0,
            at_micros: 0,
        };
        let idle_slow = LoadReport {
            site: SiteId(2),
            queue_len: 0,
            queue_cost: 0.0,
            capacity: 1.0,
            at_micros: 0,
        };
        let busy_slow = LoadReport {
            site: SiteId(3),
            queue_len: 8,
            queue_cost: 0.0,
            capacity: 1.0,
            at_micros: 0,
        };
        assert!(idle_fast.expected_wait() <= idle_slow.expected_wait());
        assert!(busy_fast.expected_wait() < busy_slow.expected_wait());
        assert!(
            idle_slow.expected_wait() < busy_fast.expected_wait()
                || idle_slow.expected_wait() == 0.0
        );
        let broken = LoadReport {
            site: SiteId(4),
            queue_len: 1,
            queue_cost: 0.0,
            capacity: 0.0,
            at_micros: 0,
        };
        assert!(broken.expected_wait().is_infinite());
    }

    #[test]
    fn nan_capacity_never_produces_a_nan_wait() {
        let broken = LoadReport {
            site: SiteId(9),
            queue_len: 3,
            queue_cost: 0.0,
            capacity: f64::NAN,
            at_micros: 0,
        };
        assert!(broken.expected_wait().is_infinite());
        assert!(broken.decayed_wait(1_000, 500).is_infinite());
    }

    #[test]
    fn decay_penalises_age_and_spares_fresh_reports() {
        let r = LoadReport {
            site: SiteId(1),
            queue_len: 4,
            queue_cost: 0.0,
            capacity: 2.0,
            at_micros: 1_000,
        };
        // Fresh: decayed equals raw.
        assert_eq!(r.decayed_wait(1_000, 10_000), r.expected_wait());
        // One half-life: (4+1)*2-1 = 9 effective jobs.
        assert_eq!(r.decayed_wait(11_000, 10_000), 9.0 / 2.0);
        // Disabled decay leaves the raw wait even for ancient reports.
        assert_eq!(r.decayed_wait(u64::MAX, 0), r.expected_wait());
        // An idle-but-stale report ranks behind an idle-and-fresh one.
        let idle = LoadReport {
            site: SiteId(2),
            queue_len: 0,
            queue_cost: 0.0,
            capacity: 2.0,
            at_micros: 0,
        };
        assert!(idle.decayed_wait(20_000, 10_000) > 0.0);
        // Extreme ages stay finite so the policy's finite filter keeps them.
        assert!(r.decayed_wait(u64::MAX, 1).is_finite());
    }

    #[test]
    fn freshness_window_is_inclusive_and_clock_skew_safe() {
        let r = LoadReport {
            site: SiteId(0),
            queue_len: 0,
            queue_cost: 0.0,
            capacity: 1.0,
            at_micros: 5_000,
        };
        assert_eq!(r.age_micros(4_000), 0, "sample from the future has age 0");
        assert!(r.is_fresh(5_000, 0));
        assert!(r.is_fresh(6_000, 1_000));
        assert!(!r.is_fresh(6_001, 1_000));
    }

    #[test]
    fn report_db_filters_staleness_at_read_time_and_purges_amortized() {
        let mut db = ReportDb::new(Duration::from_millis(1));
        let report = |site: u32, at: u64| LoadReport {
            site: SiteId(site),
            queue_len: 1,
            queue_cost: 0.0,
            capacity: 1.0,
            at_micros: at,
        };
        db.ingest(report(0, 0), 0);
        db.ingest(report(0, 5), 5);
        assert_eq!(db.len(), 1, "latest report per site only");
        // At t=2000 the t=5 report has aged past the 1 ms TTL: reads filter
        // it even though nothing has been purged yet.
        assert!(db.fresh(2_000, |_| true).is_empty());
        assert_eq!(db.live(|_| true).len(), 1, "stale fallback still sees it");
        assert!(db.live(|_| false).is_empty(), "liveness always applies");
        // Pour in enough distinct stale sites to cross the watermark: the
        // amortized purge drops all of them.
        for s in 1..40 {
            db.ingest(report(s, 0), 50_000);
        }
        assert!(
            db.len() < 40,
            "the watermark purge must have run (len {})",
            db.len()
        );
        // Bumping a known site raises its queue; unknown sites are ignored.
        let mut db = ReportDb::new(Duration::from_secs(1));
        db.ingest(report(7, 0), 0);
        db.bump(SiteId(7));
        db.bump(SiteId(99));
        assert_eq!(db.fresh(0, |_| true)[0].queue_len, 2);
        assert!(!db.is_empty());
        assert_eq!(db.report_ttl(), Duration::from_secs(1));
    }

    #[test]
    fn cost_weighted_queue_orders_ahead_of_job_count() {
        // Same job count, very different outstanding work: the cost-aware
        // comparison must prefer the site holding light jobs.
        let heavy = LoadReport {
            site: SiteId(0),
            queue_len: 2,
            queue_cost: 40.0,
            capacity: 1.0,
            at_micros: 0,
        };
        let light = LoadReport {
            site: SiteId(1),
            queue_len: 2,
            queue_cost: 2.0,
            capacity: 1.0,
            at_micros: 0,
        };
        assert!(light.expected_wait() < heavy.expected_wait());
        assert!(light.decayed_wait(10_000, 10_000) < heavy.decayed_wait(10_000, 10_000));
        // Cost-blind reports fall back to the job count, so mixing old and
        // new reports keeps a single comparable ordering.
        let blind = LoadReport {
            site: SiteId(2),
            queue_len: 3,
            queue_cost: 0.0,
            capacity: 1.0,
            at_micros: 0,
        };
        assert_eq!(blind.effective_queue(), 3.0);
        assert_eq!(blind.expected_wait(), 3.0);
        // The cost folder round-trips, and is omitted when zero so legacy
        // wire shapes stay byte-identical.
        let parsed = LoadReport::from_briefcase(&heavy.to_briefcase()).unwrap();
        assert_eq!(parsed, heavy);
        assert!(!blind.to_briefcase().contains("LOAD_COST"));
        // bump_cost charges both the job count and the outstanding work.
        let mut db = ReportDb::new(Duration::from_secs(1));
        db.ingest(light, 0);
        db.bump_cost(SiteId(1), 5.0);
        let r = db.fresh(0, |_| true)[0];
        assert_eq!(r.queue_len, 3);
        assert_eq!(r.queue_cost, 7.0);
    }

    #[test]
    fn briefcase_round_trip() {
        let r = LoadReport {
            site: SiteId(7),
            queue_len: 3,
            queue_cost: 0.0,
            capacity: 2.5,
            at_micros: 42,
        };
        let parsed = LoadReport::from_briefcase(&r.to_briefcase()).unwrap();
        assert_eq!(parsed, r);
        assert!(LoadReport::from_briefcase(&Briefcase::new()).is_none());
    }
}
