//! Load reports: what monitors tell brokers about provider sites.

use serde::{Deserialize, Serialize};
use tacoma_core::Briefcase;
use tacoma_util::SiteId;

/// One monitoring sample for a provider site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// The provider site this report describes.
    pub site: SiteId,
    /// Jobs currently queued (including the one in service).
    pub queue_len: u64,
    /// Relative processing capacity (jobs per simulated second at nominal size).
    pub capacity: f64,
    /// Simulated time (microseconds) the sample was taken.
    pub at_micros: u64,
}

impl LoadReport {
    /// Expected wait for a newly arriving job, in seconds: queue length
    /// divided by capacity.  Lower is better; brokers pick the minimum.
    pub fn expected_wait(&self) -> f64 {
        if self.capacity <= 0.0 {
            f64::INFINITY
        } else {
            self.queue_len as f64 / self.capacity
        }
    }

    /// Serializes the report into briefcase folders (strings, so TacoScript
    /// agents can also read them).
    pub fn to_briefcase(&self) -> Briefcase {
        let mut bc = Briefcase::new();
        bc.put_string("LOAD_SITE", self.site.0.to_string());
        bc.put_string("LOAD_QUEUE", self.queue_len.to_string());
        bc.put_string("LOAD_CAPACITY", format!("{}", self.capacity));
        bc.put_string("LOAD_AT", self.at_micros.to_string());
        bc
    }

    /// Parses a report out of briefcase folders, if all fields are present.
    pub fn from_briefcase(bc: &Briefcase) -> Option<LoadReport> {
        Some(LoadReport {
            site: SiteId(bc.peek_string("LOAD_SITE")?.parse().ok()?),
            queue_len: bc.peek_string("LOAD_QUEUE")?.parse().ok()?,
            capacity: bc.peek_string("LOAD_CAPACITY")?.parse().ok()?,
            at_micros: bc.peek_string("LOAD_AT")?.parse().ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_wait_orders_sites_sensibly() {
        let idle_fast = LoadReport {
            site: SiteId(0),
            queue_len: 0,
            capacity: 4.0,
            at_micros: 0,
        };
        let busy_fast = LoadReport {
            site: SiteId(1),
            queue_len: 8,
            capacity: 4.0,
            at_micros: 0,
        };
        let idle_slow = LoadReport {
            site: SiteId(2),
            queue_len: 0,
            capacity: 1.0,
            at_micros: 0,
        };
        let busy_slow = LoadReport {
            site: SiteId(3),
            queue_len: 8,
            capacity: 1.0,
            at_micros: 0,
        };
        assert!(idle_fast.expected_wait() <= idle_slow.expected_wait());
        assert!(busy_fast.expected_wait() < busy_slow.expected_wait());
        assert!(
            idle_slow.expected_wait() < busy_fast.expected_wait()
                || idle_slow.expected_wait() == 0.0
        );
        let broken = LoadReport {
            site: SiteId(4),
            queue_len: 1,
            capacity: 0.0,
            at_micros: 0,
        };
        assert!(broken.expected_wait().is_infinite());
    }

    #[test]
    fn briefcase_round_trip() {
        let r = LoadReport {
            site: SiteId(7),
            queue_len: 3,
            capacity: 2.5,
            at_micros: 42,
        };
        let parsed = LoadReport::from_briefcase(&r.to_briefcase()).unwrap();
        assert_eq!(parsed, r);
        assert!(LoadReport::from_briefcase(&Briefcase::new()).is_none());
    }
}
