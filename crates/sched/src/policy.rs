//! Placement policies: how a broker picks a provider for a job.
//!
//! The paper's broker distributes requests "based on load and capacity";
//! experiment E7 compares that policy against the baselines a system without
//! load reports would have to use.

use crate::load::LoadReport;
use serde::{Deserialize, Serialize};
use tacoma_util::{DetRng, SiteId};

/// The placement policy a broker uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// The paper's policy: pick the provider with the lowest expected wait
    /// (queue length divided by capacity), using the latest load reports.
    LoadBased,
    /// Uniformly random provider.
    Random,
    /// Cycle through providers in order.
    RoundRobin,
    /// Pick the provider with the shortest queue ignoring capacity — a
    /// common heuristic that the load/capacity policy should beat on
    /// heterogeneous providers.
    ShortestQueue,
}

impl PlacementPolicy {
    /// All policies, in the order experiment tables report them.
    pub const ALL: [PlacementPolicy; 4] = [
        PlacementPolicy::LoadBased,
        PlacementPolicy::Random,
        PlacementPolicy::RoundRobin,
        PlacementPolicy::ShortestQueue,
    ];

    /// Human-readable label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::LoadBased => "load-based (paper)",
            PlacementPolicy::Random => "random",
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::ShortestQueue => "shortest-queue",
        }
    }

    /// Chooses a provider site from the current reports.
    ///
    /// `rr_counter` is the broker's running counter for round-robin.  Returns
    /// `None` when no providers are known.
    pub fn choose(
        self,
        reports: &[LoadReport],
        rng: &mut DetRng,
        rr_counter: &mut u64,
    ) -> Option<SiteId> {
        if reports.is_empty() {
            return None;
        }
        let site = match self {
            PlacementPolicy::LoadBased => {
                reports
                    .iter()
                    .min_by(|a, b| {
                        a.expected_wait()
                            .partial_cmp(&b.expected_wait())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })?
                    .site
            }
            PlacementPolicy::Random => reports[rng.index(reports.len())].site,
            PlacementPolicy::RoundRobin => {
                let idx = (*rr_counter as usize) % reports.len();
                *rr_counter += 1;
                reports[idx].site
            }
            PlacementPolicy::ShortestQueue => reports.iter().min_by_key(|r| r.queue_len)?.site,
        };
        Some(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reports() -> Vec<LoadReport> {
        vec![
            LoadReport {
                site: SiteId(1),
                queue_len: 4,
                capacity: 8.0,
                at_micros: 0,
            }, // wait 0.5
            LoadReport {
                site: SiteId(2),
                queue_len: 1,
                capacity: 1.0,
                at_micros: 0,
            }, // wait 1.0
            LoadReport {
                site: SiteId(3),
                queue_len: 3,
                capacity: 2.0,
                at_micros: 0,
            }, // wait 1.5
        ]
    }

    #[test]
    fn load_based_uses_capacity_not_just_queue_length() {
        let mut rng = DetRng::new(1);
        let mut rr = 0;
        let choice = PlacementPolicy::LoadBased
            .choose(&reports(), &mut rng, &mut rr)
            .unwrap();
        assert_eq!(choice, SiteId(1), "longest queue but fastest machine wins");
        let sq = PlacementPolicy::ShortestQueue
            .choose(&reports(), &mut rng, &mut rr)
            .unwrap();
        assert_eq!(sq, SiteId(2), "shortest-queue ignores capacity");
    }

    #[test]
    fn round_robin_cycles() {
        let mut rng = DetRng::new(1);
        let mut rr = 0;
        let picks: Vec<SiteId> = (0..6)
            .map(|_| {
                PlacementPolicy::RoundRobin
                    .choose(&reports(), &mut rng, &mut rr)
                    .unwrap()
            })
            .collect();
        assert_eq!(picks[0], picks[3]);
        assert_eq!(picks[1], picks[4]);
        assert_ne!(picks[0], picks[1]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let sites: Vec<SiteId> = {
            let mut rng = DetRng::new(9);
            let mut rr = 0;
            (0..20)
                .map(|_| {
                    PlacementPolicy::Random
                        .choose(&reports(), &mut rng, &mut rr)
                        .unwrap()
                })
                .collect()
        };
        let again: Vec<SiteId> = {
            let mut rng = DetRng::new(9);
            let mut rr = 0;
            (0..20)
                .map(|_| {
                    PlacementPolicy::Random
                        .choose(&reports(), &mut rng, &mut rr)
                        .unwrap()
                })
                .collect()
        };
        assert_eq!(sites, again);
        assert!(sites
            .iter()
            .all(|s| [SiteId(1), SiteId(2), SiteId(3)].contains(s)));
    }

    #[test]
    fn empty_reports_give_none() {
        let mut rng = DetRng::new(1);
        let mut rr = 0;
        for policy in PlacementPolicy::ALL {
            assert!(policy.choose(&[], &mut rng, &mut rr).is_none());
            assert!(!policy.label().is_empty());
        }
    }
}
