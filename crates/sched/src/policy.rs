//! Placement policies: how a broker picks a provider for a job.
//!
//! The paper's broker distributes requests "based on load and capacity";
//! experiment E7 compares that policy against the baselines a system without
//! load reports would have to use.

use crate::load::LoadReport;
use serde::{Deserialize, Serialize};
use tacoma_util::{DetRng, SiteId};

/// The placement policy a broker uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// The paper's policy: pick the provider with the lowest expected wait
    /// (queue length divided by capacity), using the latest load reports.
    LoadBased,
    /// Uniformly random provider.
    Random,
    /// Cycle through providers in order.
    RoundRobin,
    /// Pick the provider with the shortest queue ignoring capacity — a
    /// common heuristic that the load/capacity policy should beat on
    /// heterogeneous providers.
    ShortestQueue,
    /// Power-of-two-choices: sample two distinct providers uniformly and take
    /// the one with the lower *staleness-decayed* wait
    /// ([`LoadReport::decayed_wait`]).  Sampling avoids the herding a global
    /// minimum causes when many placements happen between load reports, and
    /// the decay stops a dead provider's last report from winning forever —
    /// the placement policy federated brokers use.
    PowerOfTwo,
}

impl PlacementPolicy {
    /// The four classic policies, in the order experiment E7's table reports
    /// them.  [`PlacementPolicy::PowerOfTwo`] is deliberately not part of
    /// this set: E7's row layout (and its gated baseline) predates it; the
    /// federation experiments compare it explicitly.
    pub const ALL: [PlacementPolicy; 4] = [
        PlacementPolicy::LoadBased,
        PlacementPolicy::Random,
        PlacementPolicy::RoundRobin,
        PlacementPolicy::ShortestQueue,
    ];

    /// Every policy, including the sampled one.
    pub const EXTENDED: [PlacementPolicy; 5] = [
        PlacementPolicy::LoadBased,
        PlacementPolicy::Random,
        PlacementPolicy::RoundRobin,
        PlacementPolicy::ShortestQueue,
        PlacementPolicy::PowerOfTwo,
    ];

    /// Human-readable label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::LoadBased => "load-based (paper)",
            PlacementPolicy::Random => "random",
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::ShortestQueue => "shortest-queue",
            PlacementPolicy::PowerOfTwo => "power-of-two choices",
        }
    }

    /// Chooses a provider site from the current reports.
    ///
    /// `now_micros` is the broker's clock, used by the staleness-decayed
    /// policies; `decay_half_life_micros` is the decay knob (0 disables
    /// decay).  `rr_counter` is the broker's running counter for round-robin.
    /// Returns `None` when no providers are known or none has a finite wait.
    ///
    /// Ties are broken deterministically on the lowest [`SiteId`], and
    /// non-finite waits (a dead or zero-capacity provider) are filtered out
    /// rather than being allowed to corrupt the ordering.
    pub fn choose(
        self,
        reports: &[LoadReport],
        now_micros: u64,
        decay_half_life_micros: u64,
        rng: &mut DetRng,
        rr_counter: &mut u64,
    ) -> Option<SiteId> {
        if reports.is_empty() {
            return None;
        }
        let site = match self {
            PlacementPolicy::LoadBased => {
                reports
                    .iter()
                    .filter(|r| r.expected_wait().is_finite())
                    .min_by(|a, b| {
                        a.expected_wait()
                            .total_cmp(&b.expected_wait())
                            .then(a.site.cmp(&b.site))
                    })?
                    .site
            }
            PlacementPolicy::Random => reports[rng.index(reports.len())].site,
            PlacementPolicy::RoundRobin => {
                let idx = (*rr_counter as usize) % reports.len();
                *rr_counter += 1;
                reports[idx].site
            }
            PlacementPolicy::ShortestQueue => {
                reports.iter().min_by_key(|r| (r.queue_len, r.site))?.site
            }
            PlacementPolicy::PowerOfTwo => {
                let wait = |r: &LoadReport| r.decayed_wait(now_micros, decay_half_life_micros);
                let eligible: Vec<&LoadReport> =
                    reports.iter().filter(|r| wait(r).is_finite()).collect();
                match eligible.len() {
                    0 => return None,
                    1 => eligible[0].site,
                    n => {
                        // Two distinct samples: one uniform draw plus a
                        // uniform draw over the remaining n-1.
                        let a = rng.index(n);
                        let b = (a + 1 + rng.index(n - 1)) % n;
                        let (ra, rb) = (eligible[a], eligible[b]);
                        match wait(ra).total_cmp(&wait(rb)).then(ra.site.cmp(&rb.site)) {
                            std::cmp::Ordering::Greater => rb.site,
                            _ => ra.site,
                        }
                    }
                }
            }
        };
        Some(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reports() -> Vec<LoadReport> {
        vec![
            LoadReport {
                site: SiteId(1),
                queue_len: 4,
                queue_cost: 0.0,
                capacity: 8.0,
                at_micros: 0,
            }, // wait 0.5
            LoadReport {
                site: SiteId(2),
                queue_len: 1,
                queue_cost: 0.0,
                capacity: 1.0,
                at_micros: 0,
            }, // wait 1.0
            LoadReport {
                site: SiteId(3),
                queue_len: 3,
                queue_cost: 0.0,
                capacity: 2.0,
                at_micros: 0,
            }, // wait 1.5
        ]
    }

    fn choose(policy: PlacementPolicy, reports: &[LoadReport], seed: u64) -> Option<SiteId> {
        let mut rng = DetRng::new(seed);
        let mut rr = 0;
        policy.choose(reports, 0, 0, &mut rng, &mut rr)
    }

    #[test]
    fn load_based_uses_capacity_not_just_queue_length() {
        let choice = choose(PlacementPolicy::LoadBased, &reports(), 1).unwrap();
        assert_eq!(choice, SiteId(1), "longest queue but fastest machine wins");
        let sq = choose(PlacementPolicy::ShortestQueue, &reports(), 1).unwrap();
        assert_eq!(sq, SiteId(2), "shortest-queue ignores capacity");
    }

    #[test]
    fn round_robin_cycles() {
        let mut rng = DetRng::new(1);
        let mut rr = 0;
        let picks: Vec<SiteId> = (0..6)
            .map(|_| {
                PlacementPolicy::RoundRobin
                    .choose(&reports(), 0, 0, &mut rng, &mut rr)
                    .unwrap()
            })
            .collect();
        assert_eq!(picks[0], picks[3]);
        assert_eq!(picks[1], picks[4]);
        assert_ne!(picks[0], picks[1]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let run = || -> Vec<SiteId> {
            let mut rng = DetRng::new(9);
            let mut rr = 0;
            (0..20)
                .map(|_| {
                    PlacementPolicy::Random
                        .choose(&reports(), 0, 0, &mut rng, &mut rr)
                        .unwrap()
                })
                .collect()
        };
        let sites = run();
        assert_eq!(sites, run());
        assert!(sites
            .iter()
            .all(|s| [SiteId(1), SiteId(2), SiteId(3)].contains(s)));
    }

    #[test]
    fn empty_reports_give_none() {
        for policy in PlacementPolicy::EXTENDED {
            assert!(choose(policy, &[], 1).is_none());
            assert!(!policy.label().is_empty());
        }
    }

    fn report(site: u32, queue_len: u64, capacity: f64, at_micros: u64) -> LoadReport {
        LoadReport {
            site: SiteId(site),
            queue_len,
            queue_cost: 0.0,
            capacity,
            at_micros,
        }
    }

    #[test]
    fn ties_break_on_lowest_site_id_regardless_of_report_order() {
        // Three providers with identical expected waits, presented in
        // descending site order: the herding bug picked whichever came first
        // in the slice; the fix always lands on the lowest SiteId.
        let tied = vec![
            report(7, 2, 4.0, 0),
            report(3, 1, 2.0, 0),
            report(5, 2, 4.0, 0),
        ];
        assert_eq!(
            choose(PlacementPolicy::LoadBased, &tied, 1),
            Some(SiteId(3))
        );
        let queue_tied = vec![report(9, 1, 1.0, 0), report(4, 1, 8.0, 0)];
        assert_eq!(
            choose(PlacementPolicy::ShortestQueue, &queue_tied, 1),
            Some(SiteId(4))
        );
    }

    #[test]
    fn nan_capacity_reports_are_filtered_not_chosen() {
        // A NaN expected wait used to poison `min_by` via the
        // `partial_cmp(..).unwrap_or(Equal)` fallback; now any non-finite
        // wait is filtered before the ordering runs.
        let poisoned = vec![
            report(1, 0, f64::NAN, 0),
            report(2, 5, 1.0, 0),
            report(3, 0, 0.0, 0),
        ];
        assert_eq!(
            choose(PlacementPolicy::LoadBased, &poisoned, 1),
            Some(SiteId(2)),
            "the only finite-wait provider must win"
        );
        // All-non-finite means no placement at all, not a corrupted pick.
        let hopeless = vec![report(1, 0, f64::NAN, 0), report(2, 1, 0.0, 0)];
        assert_eq!(choose(PlacementPolicy::LoadBased, &hopeless, 1), None);
        for seed in 0..8 {
            assert_eq!(choose(PlacementPolicy::PowerOfTwo, &hopeless, seed), None);
            assert_eq!(
                choose(PlacementPolicy::PowerOfTwo, &poisoned, seed),
                Some(SiteId(2))
            );
        }
    }

    #[test]
    fn power_of_two_spreads_instead_of_herding() {
        // Ten identically-loaded providers: the global-minimum policy herds
        // every placement onto the tie-break winner, power-of-two-choices
        // spreads across the fleet.
        let fleet: Vec<LoadReport> = (0..10).map(|s| report(s, 1, 2.0, 0)).collect();
        let mut rng = DetRng::new(42);
        let mut rr = 0;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(
                PlacementPolicy::PowerOfTwo
                    .choose(&fleet, 0, 0, &mut rng, &mut rr)
                    .unwrap(),
            );
            assert_eq!(
                PlacementPolicy::LoadBased
                    .choose(&fleet, 0, 0, &mut rng, &mut rr)
                    .unwrap(),
                SiteId(0),
                "the deterministic policy herds onto the tie-break winner"
            );
        }
        assert!(seen.len() >= 5, "sampling must spread: {seen:?}");
    }

    #[test]
    fn power_of_two_prefers_fresh_reports_under_decay() {
        // A stale idle report vs a fresh one-job report: with decay the
        // phantom-job penalty makes the stale provider lose every sample.
        let half_life = 1_000u64;
        let now = 10_000u64;
        let pair = vec![report(1, 0, 1.0, 0), report(2, 1, 1.0, now)];
        for seed in 0..16 {
            let mut rng = DetRng::new(seed);
            let mut rr = 0;
            assert_eq!(
                PlacementPolicy::PowerOfTwo.choose(&pair, now, half_life, &mut rng, &mut rr),
                Some(SiteId(2)),
                "fresh 1-deep queue beats a 10-half-life-old idle report"
            );
        }
    }

    #[test]
    fn single_eligible_report_is_chosen_without_sampling() {
        let one = vec![report(6, 3, 1.5, 0)];
        for seed in 0..4 {
            assert_eq!(
                choose(PlacementPolicy::PowerOfTwo, &one, seed),
                Some(SiteId(6))
            );
        }
    }
}
