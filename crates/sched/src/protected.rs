//! Protected agents: brokers as the only path to a secret agent.
//!
//! From §4: "Another use of broker agents is to enforce some protected agent's
//! policies with regard to meeting other agents.  This is accomplished by
//! keeping the name of the protected agent secret from all but its broker.
//! The broker, then, provides the only way to meet with the protected agent.
//! To do this, the broker maintains a folder for each agent that has requested
//! a meeting with the protected agent.  This folder contains the agent that
//! has requested the meeting (along with its briefcase)."
//!
//! [`ProtectedBrokerAgent`] is such a broker: it alone knows the protected
//! agent's (unguessable) registered name, applies an admission policy, queues
//! every request — briefcase and all — in a cabinet folder (possible precisely
//! because folders are uninterpreted and can store agents and folder sets),
//! and relays admitted requests.

use tacoma_core::codec;
use tacoma_core::prelude::*;

/// Folder a requester uses to identify itself to the protected-agent broker.
pub const REQUESTER: &str = "REQUESTER";
/// Cabinet where the broker queues meeting requests.
pub const MEETINGS_CABINET: &str = "protected_meetings";

/// Admission policy for a protected agent.
#[derive(Debug, Clone)]
pub enum AdmissionPolicy {
    /// Anyone may meet the protected agent (but only via the broker).
    AllowAll,
    /// Only requesters on this list are admitted.
    AllowList(Vec<String>),
}

impl AdmissionPolicy {
    fn admits(&self, requester: &str) -> bool {
        match self {
            AdmissionPolicy::AllowAll => true,
            AdmissionPolicy::AllowList(list) => list.iter().any(|r| r == requester),
        }
    }
}

/// The broker guarding one protected agent.
pub struct ProtectedBrokerAgent {
    /// The broker's own well-known name (e.g. `"oracle_broker"`).
    public_name: String,
    /// The protected agent's secret registered name.
    secret_name: AgentName,
    policy: AdmissionPolicy,
    relayed: u64,
    denied: u64,
}

impl ProtectedBrokerAgent {
    /// Creates a broker for `secret_name`, reachable under `public_name`.
    pub fn new(
        public_name: impl Into<String>,
        secret_name: AgentName,
        policy: AdmissionPolicy,
    ) -> Self {
        ProtectedBrokerAgent {
            public_name: public_name.into(),
            secret_name,
            policy,
            relayed: 0,
            denied: 0,
        }
    }

    /// Requests relayed to the protected agent so far.
    pub fn relayed(&self) -> u64 {
        self.relayed
    }

    /// Requests denied by the admission policy so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }
}

impl Agent for ProtectedBrokerAgent {
    fn name(&self) -> AgentName {
        AgentName::new(self.public_name.clone())
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        let requester = bc
            .peek_string(REQUESTER)
            .ok_or_else(|| TacomaError::missing(REQUESTER))?;

        // Queue the request — requester and entire briefcase — in a folder,
        // exactly as §4 describes (folders are uninterpreted, so an encoded
        // briefcase is a perfectly good element).
        let encoded = codec::encode_briefcase(&bc);
        ctx.cabinet(MEETINGS_CABINET)
            .append(format!("QUEUE_{requester}").as_str(), encoded);

        if !self.policy.admits(&requester) {
            self.denied += 1;
            return Err(TacomaError::Refused(format!(
                "'{requester}' is not admitted to the protected agent"
            )));
        }
        self.relayed += 1;
        // Relay synchronously and hand the reply back, hiding the secret name.
        let mut request = bc;
        request.take(REQUESTER);
        ctx.meet_local(&self.secret_name, request)
    }
}

/// Generates an unguessable registered name for a protected agent.
pub fn secret_agent_name(rng: &mut tacoma_util::DetRng, hint: &str) -> AgentName {
    AgentName::new(format!(
        "protected-{hint}-{:016x}{:016x}",
        rng.next_u64(),
        rng.next_u64()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_core::TacomaSystem;
    use tacoma_net::{LinkSpec, Topology};
    use tacoma_util::DetRng;

    /// The protected agent: answers questions only for those who reach it.
    struct Oracle;
    impl Agent for Oracle {
        fn name(&self) -> AgentName {
            AgentName::new("this-name-is-replaced-at-registration")
        }
        fn meet(&mut self, _ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
            bc.put_string("ANSWER", "42");
            Ok(bc)
        }
    }

    /// Wrapper installing the oracle under an arbitrary secret name.
    struct Named {
        name: AgentName,
        inner: Oracle,
    }
    impl Agent for Named {
        fn name(&self) -> AgentName {
            self.name.clone()
        }
        fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
            self.inner.meet(ctx, bc)
        }
    }

    fn setup(policy: AdmissionPolicy) -> (TacomaSystem, AgentName) {
        let mut sys = TacomaSystem::new(Topology::full_mesh(1, LinkSpec::default()), 4);
        let mut rng = DetRng::new(77);
        let secret = secret_agent_name(&mut rng, "oracle");
        sys.register_agent(
            SiteId(0),
            Box::new(Named {
                name: secret.clone(),
                inner: Oracle,
            }),
        );
        sys.register_agent(
            SiteId(0),
            Box::new(ProtectedBrokerAgent::new(
                "oracle_broker",
                secret.clone(),
                policy,
            )),
        );
        (sys, secret)
    }

    fn ask(requester: &str) -> Briefcase {
        let mut bc = Briefcase::new();
        bc.put_string(REQUESTER, requester);
        bc.put_string("QUESTION", "meaning of life");
        bc
    }

    #[test]
    fn requests_through_the_broker_reach_the_protected_agent() {
        let (mut sys, _) = setup(AdmissionPolicy::AllowAll);
        let reply = sys
            .try_direct_meet(SiteId(0), &AgentName::new("oracle_broker"), ask("alice"))
            .unwrap();
        assert_eq!(reply.peek_string("ANSWER").as_deref(), Some("42"));
        // The request was queued in the meetings cabinet.
        let cab = sys
            .place(SiteId(0))
            .cabinets()
            .get(MEETINGS_CABINET)
            .unwrap();
        assert!(cab.folder_ref("QUEUE_alice").is_some());
    }

    #[test]
    fn guessing_common_names_fails() {
        let (mut sys, _) = setup(AdmissionPolicy::AllowAll);
        for guess in ["oracle", "protected", "secret", "agent47"] {
            let err = sys
                .try_direct_meet(SiteId(0), &AgentName::new(guess), ask("mallory"))
                .unwrap_err();
            assert!(matches!(err, TacomaError::NoSuchAgent { .. }));
        }
    }

    #[test]
    fn knowing_the_secret_name_does_meet_directly_which_is_why_it_is_secret() {
        // The protection is by secrecy of the name (as in the paper), not by a
        // reference monitor: if the name leaks, direct meets work.
        let (mut sys, secret) = setup(AdmissionPolicy::AllowAll);
        assert!(sys
            .try_direct_meet(SiteId(0), &secret, ask("insider"))
            .is_ok());
    }

    #[test]
    fn allow_list_is_enforced_and_requests_still_queued() {
        let (mut sys, _) = setup(AdmissionPolicy::AllowList(vec!["alice".into()]));
        assert!(sys
            .try_direct_meet(SiteId(0), &AgentName::new("oracle_broker"), ask("alice"))
            .is_ok());
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new("oracle_broker"), ask("mallory"))
            .unwrap_err();
        assert!(matches!(err, TacomaError::Refused(_)));
        let cab = sys
            .place(SiteId(0))
            .cabinets()
            .get(MEETINGS_CABINET)
            .unwrap();
        assert!(
            cab.folder_ref("QUEUE_mallory").is_some(),
            "denied requests are still recorded"
        );
    }

    #[test]
    fn missing_requester_folder_is_rejected() {
        let (mut sys, _) = setup(AdmissionPolicy::AllowAll);
        let err = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new("oracle_broker"),
                Briefcase::new(),
            )
            .unwrap_err();
        assert!(matches!(err, TacomaError::MissingFolder(_)));
    }
}
