//! Broker federation: sharded, staleness-aware, failure-tolerant scheduling.
//!
//! The paper's §4 expects brokers "to communicate among themselves and with
//! the service providers, so that requests can be distributed amongst service
//! providers based on load and capacity" — plural brokers.  The seed kept a
//! single broker trusting every report forever; at 1024 sites that design
//! drowns in cross-WAN report traffic and places jobs on seconds-stale
//! information.  This module shards the provider fleet across `k` brokers:
//!
//! * every provider's monitor reports to its **shard broker** (a near-by
//!   gateway, so report transit is LAN-scale and the information is fresh);
//! * brokers exchange compact **aggregated digests** ([`ShardDigest`]) on a
//!   configurable period — the paper's broker-to-broker communication — and
//!   use them to **forward** a job when their own shard has no eligible
//!   provider (one hop, loop-safe);
//! * placement inside a shard is **staleness-aware**: reports expire after a
//!   TTL, and the sampled [`PlacementPolicy::PowerOfTwo`] policy decays old
//!   reports ([`crate::LoadReport::decayed_wait`]) so a dead provider's last report
//!   cannot keep attracting jobs;
//! * failover rides the ft layer's guard: a `BrokerGuardAgent` (see
//!   `tacoma_ft`) watches each primary and, when it stays dead, sends the
//!   co-located broker an [`wellknown::ADOPT`] meet and every orphaned
//!   provider a [`wellknown::REHOME`] meet — the crashed broker's shard is
//!   re-adopted instead of orphaned.
//!
//! [`run_federation_experiment`] drives the whole thing on a ring-of-cliques
//! topology; experiment E15 sweeps shard count and digest period against the
//! single-broker baseline (`shards == 1`), E16 crashes a broker under job
//! churn.

use crate::agents::{dispatch_with_ticket, parse_report, MonitorAgent};
use crate::agents::{TicketAgent, WorkerAgent, DONE, JOB, JOBS_CABINET, JOB_SIZE, REQUEST};
use crate::load::ReportDb;
use crate::policy::PlacementPolicy;
use std::collections::BTreeMap;
use tacoma_core::prelude::*;
use tacoma_core::TacomaSystem;
use tacoma_net::{CustodyConfig, LinkSpec, SimTime, Topology};
use tacoma_util::Summary;

/// Folder marking a job that has already been forwarded once between
/// brokers; a second forward is refused instead of looping.
pub const FORWARDED: &str = "FED_FORWARDED";
/// Cabinet where a federated broker records its control-plane events.
pub const BROKER_CABINET: &str = "fed_broker";
/// Folder (in [`BROKER_CABINET`]) with one element per job placed locally.
pub const PLACED: &str = "PLACED";
/// Folder with one element per job forwarded to a peer broker.
pub const FWD: &str = "FWD";
/// Folder with one element per digest sent to a peer.
pub const DIG_TX: &str = "DIG_TX";
/// Folder with one element per digest received from a peer.
pub const DIG_RX: &str = "DIG_RX";
/// Folder with one element per shard adoption performed.
pub const ADOPTED: &str = "ADOPTED";
/// Folder with one element per submission shed by broker admission control
/// (the local shard and every under-threshold peer were saturated).
pub const SHED: &str = "SHED";
/// Well-known name of the federated job source agent.
pub const FED_SOURCE: &str = "fed_source";

/// A compact aggregate of one broker's shard, gossiped to its peers.
///
/// Digests are what keep inter-broker traffic *aggregated*: one small
/// message per peer per period instead of relaying every load report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardDigest {
    /// The shard this digest describes.
    pub shard: u32,
    /// The broker site that produced it.
    pub broker_site: SiteId,
    /// Providers with a fresh report at digest time.
    pub live_providers: u32,
    /// Sum of their reported queue lengths.
    pub total_queue: u64,
    /// Sum of their cost-weighted queues (kilosteps); zero when every
    /// report in the shard is cost-blind.
    pub total_cost: f64,
    /// Sum of their capacities.
    pub total_capacity: f64,
    /// Simulated time the digest was computed.
    pub at_micros: u64,
}

impl ShardDigest {
    /// Shard-aggregate expected wait: total effective queue (cost-weighted
    /// when any report carried cost, job count otherwise) over total
    /// capacity.  Infinite when the shard has no live capacity.
    pub fn aggregate_wait(&self) -> f64 {
        if self.total_capacity.is_nan() || self.total_capacity <= 0.0 {
            f64::INFINITY
        } else if self.total_cost > 0.0 {
            self.total_cost / self.total_capacity
        } else {
            self.total_queue as f64 / self.total_capacity
        }
    }

    /// Serializes the digest into briefcase folders.
    pub fn to_briefcase(&self) -> Briefcase {
        let mut bc = Briefcase::new();
        bc.put_string(wellknown::DIGEST, "1");
        bc.put_string("DIG_SHARD", self.shard.to_string());
        bc.put_string("DIG_SITE", self.broker_site.0.to_string());
        bc.put_string("DIG_LIVE", self.live_providers.to_string());
        bc.put_string("DIG_QUEUE", self.total_queue.to_string());
        if self.total_cost != 0.0 {
            bc.put_string("DIG_COST", format!("{}", self.total_cost));
        }
        bc.put_string("DIG_CAPACITY", format!("{}", self.total_capacity));
        bc.put_string("DIG_AT", self.at_micros.to_string());
        bc
    }

    /// Parses a digest back out of briefcase folders.
    pub fn from_briefcase(bc: &Briefcase) -> Option<ShardDigest> {
        Some(ShardDigest {
            shard: bc.peek_string("DIG_SHARD")?.parse().ok()?,
            broker_site: SiteId(bc.peek_string("DIG_SITE")?.parse().ok()?),
            live_providers: bc.peek_string("DIG_LIVE")?.parse().ok()?,
            total_queue: bc.peek_string("DIG_QUEUE")?.parse().ok()?,
            total_cost: bc
                .peek_string("DIG_COST")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.0),
            total_capacity: bc.peek_string("DIG_CAPACITY")?.parse().ok()?,
            at_micros: bc.peek_string("DIG_AT")?.parse().ok()?,
        })
    }
}

/// One shard's broker in a federation.
///
/// Registers under the plain [`wellknown::BROKER`] name — names are per-site,
/// so "the broker at site s" is unambiguous — and speaks the same `REQUEST`
/// protocol as the single [`crate::BrokerAgent`], extended with `"digest"`
/// meets from peers and [`wellknown::ADOPT`] meets from a failover guard.
pub struct FederatedBrokerAgent {
    shard: u32,
    /// The other brokers as `(shard, site)`, in shard order.
    peers: Vec<(u32, SiteId)>,
    policy: PlacementPolicy,
    decay_half_life: Duration,
    digest_period: Duration,
    reports: ReportDb,
    digests: BTreeMap<u32, ShardDigest>,
    rr_counter: u64,
    jobs_placed: u64,
    jobs_forwarded: u64,
    /// Aggregate-wait threshold for digest-driven load shedding; `None`
    /// disables broker admission control.
    shed_threshold: Option<f64>,
    jobs_shed: u64,
}

impl FederatedBrokerAgent {
    /// Creates the broker for `shard` with the given peer set.
    pub fn new(
        shard: u32,
        peers: Vec<(u32, SiteId)>,
        policy: PlacementPolicy,
        report_ttl: Duration,
        decay_half_life: Duration,
        digest_period: Duration,
    ) -> Self {
        FederatedBrokerAgent {
            shard,
            peers,
            policy,
            decay_half_life,
            digest_period,
            reports: ReportDb::new(report_ttl),
            digests: BTreeMap::new(),
            rr_counter: 0,
            jobs_placed: 0,
            jobs_forwarded: 0,
            shed_threshold: None,
            jobs_shed: 0,
        }
    }

    /// Enables broker admission control: when this broker's own shard digest
    /// shows an aggregate wait above `threshold` *and* no peer digest is
    /// under it, new submissions are shed (refused and recorded in the
    /// [`SHED`] folder) instead of being queued into a saturated federation.
    /// A saturated broker with an under-threshold peer forwards there
    /// instead — the digest-driven half of power-of-two placement.
    pub fn shed_threshold(mut self, threshold: Option<f64>) -> Self {
        self.shed_threshold = threshold;
        self
    }

    /// Jobs this broker placed onto its own shard.
    pub fn jobs_placed(&self) -> u64 {
        self.jobs_placed
    }

    /// Jobs this broker forwarded to a peer.
    pub fn jobs_forwarded(&self) -> u64 {
        self.jobs_forwarded
    }

    /// Jobs this broker shed at admission.
    pub fn jobs_shed(&self) -> u64 {
        self.jobs_shed
    }

    /// The best (lowest) aggregate wait any usable peer digest reports, with
    /// the site advertising it.  `None` when no digest is usable.
    fn best_peer_wait(&self, now: u64, ctx: &MeetCtx<'_>) -> Option<(SiteId, f64)> {
        let ttl = self.reports.report_ttl().micros();
        self.digests
            .values()
            .filter(|d| {
                d.live_providers > 0
                    && now.saturating_sub(d.at_micros) <= ttl
                    && ctx.site_is_up(d.broker_site)
            })
            .min_by(|a, b| {
                a.aggregate_wait()
                    .total_cmp(&b.aggregate_wait())
                    .then(a.shard.cmp(&b.shard))
            })
            .map(|d| (d.broker_site, d.aggregate_wait()))
    }

    fn digest(&self, now: u64, ctx: &MeetCtx<'_>) -> ShardDigest {
        let fresh = self.reports.fresh(now, |s| ctx.site_is_up(s));
        ShardDigest {
            shard: self.shard,
            broker_site: ctx.site(),
            live_providers: fresh.len() as u32,
            total_queue: fresh.iter().map(|r| r.queue_len).sum(),
            total_cost: fresh.iter().map(|r| r.queue_cost).sum(),
            total_capacity: fresh.iter().map(|r| r.capacity).sum(),
            at_micros: now,
        }
    }

    /// The peer a placement-less job should be forwarded to: the freshest
    /// digests pick the shard with the lowest aggregate wait; with no usable
    /// digest (e.g. right after a recovery) fall back to the first live peer.
    fn forward_target(&self, now: u64, ctx: &MeetCtx<'_>) -> Option<SiteId> {
        let ttl = self.reports.report_ttl().micros();
        self.digests
            .values()
            .filter(|d| {
                d.live_providers > 0
                    && now.saturating_sub(d.at_micros) <= ttl
                    && ctx.site_is_up(d.broker_site)
            })
            .min_by(|a, b| {
                a.aggregate_wait()
                    .total_cmp(&b.aggregate_wait())
                    .then(a.shard.cmp(&b.shard))
            })
            .map(|d| d.broker_site)
            .or_else(|| {
                self.peers
                    .iter()
                    .find(|(_, site)| ctx.site_is_up(*site))
                    .map(|(_, site)| *site)
            })
    }

    fn broadcast_digest(&mut self, ctx: &mut MeetCtx<'_>) {
        let now = ctx.now().micros();
        let digest = self.digest(now, ctx);
        for (_, site) in self.peers.clone() {
            let mut bc = digest.to_briefcase();
            bc.put_string(REQUEST, "digest");
            ctx.remote_meet(
                site,
                AgentName::new(wellknown::BROKER),
                bc,
                TransportKind::Tcp,
            );
            ctx.cabinet(BROKER_CABINET)
                .append_str(DIG_TX, site.0.to_string());
        }
    }
}

impl Agent for FederatedBrokerAgent {
    fn name(&self) -> AgentName {
        AgentName::new(wellknown::BROKER)
    }

    fn on_install(&mut self, ctx: &mut MeetCtx<'_>) {
        if !self.peers.is_empty() {
            ctx.schedule(
                AgentName::new(wellknown::BROKER),
                1,
                self.digest_period,
                Briefcase::new(),
            );
        }
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        if bc.contains(wellknown::TIMER) {
            // Digest tick: gossip the shard aggregate and re-arm.
            self.broadcast_digest(ctx);
            ctx.schedule(
                AgentName::new(wellknown::BROKER),
                1,
                self.digest_period,
                Briefcase::new(),
            );
            return Ok(Briefcase::new());
        }
        if let Some(shard) = bc.peek_string(wellknown::ADOPT) {
            // A failover guard hands us a crashed peer's shard.  Its
            // monitors are being rehomed to this site; their reports flow
            // into `self.reports` like any others — adoption just records
            // the custody change.
            ctx.cabinet(BROKER_CABINET).append_str(ADOPTED, &shard);
            ctx.log(format!(
                "broker shard {} adopted orphaned shard {shard}",
                self.shard
            ));
            return Ok(Briefcase::new());
        }
        let request = bc
            .peek_string(REQUEST)
            .ok_or_else(|| TacomaError::missing(REQUEST))?;
        match request.as_str() {
            "report" => {
                let report = parse_report(&bc)?;
                self.reports.ingest(report, ctx.now().micros());
                Ok(Briefcase::new())
            }
            "digest" => {
                let digest = ShardDigest::from_briefcase(&bc)
                    .ok_or_else(|| TacomaError::bad_folder("DIG_SHARD", "malformed digest"))?;
                ctx.cabinet(BROKER_CABINET)
                    .append_str(DIG_RX, digest.shard.to_string());
                self.digests.insert(digest.shard, digest);
                Ok(Briefcase::new())
            }
            "lookup" | "submit" => {
                let now = ctx.now().micros();
                if request == "submit" {
                    if let Some(threshold) = self.shed_threshold {
                        let local_wait = self.digest(now, ctx).aggregate_wait();
                        if local_wait > threshold {
                            // Saturated here.  A peer advertising headroom
                            // absorbs the overflow (forward once); with none,
                            // the job is shed at admission — a fast explicit
                            // no instead of a queue that only grows.
                            if !bc.contains(FORWARDED) {
                                if let Some((peer, wait)) = self.best_peer_wait(now, ctx) {
                                    if wait <= threshold {
                                        self.jobs_forwarded += 1;
                                        let job = bc.peek_string(JOB).unwrap_or_default();
                                        ctx.cabinet(BROKER_CABINET).append_str(FWD, &job);
                                        bc.put_string(FORWARDED, "1");
                                        let mut reply = Briefcase::new();
                                        reply.put_string(PROVIDER, format!("forwarded:{peer}"));
                                        ctx.remote_meet(
                                            peer,
                                            AgentName::new(wellknown::BROKER),
                                            bc,
                                            TransportKind::Tcp,
                                        );
                                        return Ok(reply);
                                    }
                                }
                            }
                            self.jobs_shed += 1;
                            let job = bc.peek_string(JOB).unwrap_or_default();
                            ctx.cabinet(BROKER_CABINET).append_str(SHED, &job);
                            return Err(TacomaError::Refused(format!(
                                "shard {} shed '{job}': aggregate wait {local_wait:.2} over \
                                 threshold {threshold:.2} with no peer headroom",
                                self.shard
                            )));
                        }
                    }
                }
                let reports = self.reports.fresh(now, |s| ctx.site_is_up(s));
                let mut chosen = self.policy.choose(
                    &reports,
                    now,
                    self.decay_half_life.micros(),
                    ctx.rng(),
                    &mut self.rr_counter,
                );
                if chosen.is_none() {
                    // No fresh report (e.g. right after this site recovered,
                    // before the next monitor period).  Best-effort fallback:
                    // stale reports of still-up providers beat dropping the
                    // job — the TTL exists to prefer fresh data and to shed
                    // dead providers, and the liveness filter still applies.
                    let stale = self.reports.live(|s| ctx.site_is_up(s));
                    chosen = self.policy.choose(
                        &stale,
                        now,
                        self.decay_half_life.micros(),
                        ctx.rng(),
                        &mut self.rr_counter,
                    );
                }
                let Some(chosen) = chosen else {
                    // Nothing placeable here.  Forward a submission (once)
                    // to the best peer the digests suggest.
                    if request != "submit" || bc.contains(FORWARDED) {
                        return Err(TacomaError::Refused(format!(
                            "shard {} has no eligible provider",
                            self.shard
                        )));
                    }
                    let Some(peer) = self.forward_target(now, ctx) else {
                        return Err(TacomaError::Refused(format!(
                            "shard {} has no eligible provider and no live peer",
                            self.shard
                        )));
                    };
                    self.jobs_forwarded += 1;
                    let job = bc.peek_string(JOB).unwrap_or_default();
                    ctx.cabinet(BROKER_CABINET).append_str(FWD, &job);
                    bc.put_string(FORWARDED, "1");
                    let mut reply = Briefcase::new();
                    reply.put_string(PROVIDER, format!("forwarded:{peer}"));
                    ctx.remote_meet(
                        peer,
                        AgentName::new(wellknown::BROKER),
                        bc,
                        TransportKind::Tcp,
                    );
                    return Ok(reply);
                };
                let mut reply = Briefcase::new();
                reply.put_string(PROVIDER, chosen.0.to_string());
                if request == "submit" {
                    let job = bc.peek_string(JOB).unwrap_or_default();
                    bc.take(FORWARDED);
                    dispatch_with_ticket(ctx, bc, chosen)?;
                    // Optimistic bump, as in the single broker: spread a
                    // burst even before the next report lands.
                    self.reports.bump(chosen);
                    self.jobs_placed += 1;
                    ctx.cabinet(BROKER_CABINET).append_str(PLACED, &job);
                }
                Ok(reply)
            }
            other => Err(TacomaError::Refused(format!(
                "unknown federated broker request '{other}'"
            ))),
        }
    }
}

/// Folder naming the provider chosen by a lookup (re-exported spelling of
/// [`crate::agents::PROVIDER`] so federation call-sites read naturally).
pub use crate::agents::PROVIDER;

/// A client-side job source attached to one shard.
///
/// Submits jobs to its primary broker with exponential inter-arrival times,
/// failing over to the backup broker (the primary's guard site) whenever the
/// primary is down — the client half of broker failover.
pub struct FederatedJobSource {
    primary: SiteId,
    backup: SiteId,
    remaining: u32,
    mean_job_ms: f64,
    mean_interarrival_ms: f64,
    prefix: String,
    next_id: u32,
}

impl FederatedJobSource {
    /// Creates a source submitting `jobs` jobs to `primary`, falling back to
    /// `backup` while the primary is down.
    pub fn new(
        primary: SiteId,
        backup: SiteId,
        jobs: u32,
        mean_job_ms: f64,
        mean_interarrival_ms: f64,
        prefix: impl Into<String>,
    ) -> Self {
        FederatedJobSource {
            primary,
            backup,
            remaining: jobs,
            mean_job_ms,
            mean_interarrival_ms,
            prefix: prefix.into(),
            next_id: 0,
        }
    }

    fn tick(&self, ctx: &mut MeetCtx<'_>, delay: Duration) {
        ctx.schedule(AgentName::new(FED_SOURCE), 0, delay, Briefcase::new());
    }
}

impl Agent for FederatedJobSource {
    fn name(&self) -> AgentName {
        AgentName::new(FED_SOURCE)
    }

    fn on_install(&mut self, ctx: &mut MeetCtx<'_>) {
        if self.remaining > 0 {
            self.tick(ctx, Duration::from_millis(1));
        }
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        if !bc.contains(wellknown::TIMER) || self.remaining == 0 {
            return Ok(Briefcase::new());
        }
        self.remaining -= 1;
        let size_ms = ctx.rng().exponential(self.mean_job_ms).max(1.0) as u64;
        let mut job = Briefcase::new();
        job.put_string(REQUEST, "submit");
        job.put_string(JOB, format!("{}-{}", self.prefix, self.next_id));
        job.put_string(JOB_SIZE, size_ms.to_string());
        self.next_id += 1;
        // Clients know the broker set and its liveness (the Horus-style
        // membership the kernel exposes); a down primary means the guard
        // site has — or is about to have — custody of the shard.
        let target = if ctx.site_is_up(self.primary) || !ctx.site_is_up(self.backup) {
            self.primary
        } else {
            self.backup
        };
        ctx.remote_meet(
            target,
            AgentName::new(wellknown::BROKER),
            job,
            TransportKind::Tcp,
        );
        if self.remaining > 0 {
            let gap = ctx.rng().exponential(self.mean_interarrival_ms).max(0.1);
            self.tick(ctx, Duration::from_secs_f64(gap / 1000.0));
        }
        Ok(Briefcase::new())
    }
}

/// Parameters of one federation run.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Cliques in the ring-of-cliques topology.
    pub cliques: u32,
    /// Sites per clique (gateway first); must be ≥ 2.
    pub clique_size: u32,
    /// Broker count; must divide `cliques`.  `1` is the single-broker
    /// baseline the federation is measured against.
    pub shards: u32,
    /// How often brokers gossip digests to their peers.
    pub digest_period: Duration,
    /// Monitor reporting period.
    pub report_period: Duration,
    /// How long a broker trusts a load report.
    pub report_ttl: Duration,
    /// Placement policy within a shard.
    pub policy: PlacementPolicy,
    /// Total jobs across all sources.
    pub jobs: u32,
    /// Mean job size (ms of work at capacity 1.0).
    pub mean_job_ms: f64,
    /// Aggregate mean inter-arrival time across all sources, in ms.
    pub mean_interarrival_ms: f64,
    /// Provider capacities, cycled over provider sites.
    pub capacities: Vec<f64>,
    /// Aggregate-wait threshold for broker admission control: a broker whose
    /// own shard digest shows a higher aggregate wait forwards new submits
    /// to an under-threshold peer, or sheds them when no peer has headroom
    /// (recorded in the [`SHED`] folder).  `None` disables shedding — the
    /// historical behaviour, where overload just queues.
    pub admission_threshold: Option<f64>,
    /// Store-and-forward custody configuration, when enabled (E16's failover
    /// runs park in-flight submissions across the broker outage).
    pub custody: Option<CustodyConfig>,
    /// Event-queue shards for the network simulator — unrelated to the broker
    /// `shards` above (`1` = single queue; any value is byte-identical).
    pub sim_shards: u32,
    /// Random seed.
    pub seed: u64,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            cliques: 16,
            clique_size: 4,
            shards: 4,
            digest_period: Duration::from_millis(250),
            report_period: Duration::from_millis(200),
            report_ttl: Duration::from_secs(4),
            policy: PlacementPolicy::PowerOfTwo,
            jobs: 128,
            mean_job_ms: 60.0,
            mean_interarrival_ms: 10.0,
            capacities: vec![1.0, 2.0, 4.0, 8.0],
            admission_threshold: None,
            custody: None,
            sim_shards: 1,
            seed: 1515,
        }
    }
}

/// Where everything lives in a built federation system.
#[derive(Debug, Clone)]
pub struct FederationLayout {
    /// Total sites.
    pub sites: u32,
    /// Broker site per shard, in shard order.
    pub broker_sites: Vec<SiteId>,
    /// Provider sites per shard, in shard order.
    pub providers_by_shard: Vec<Vec<SiteId>>,
    /// Job-source site per shard (a provider site in the shard's first clique).
    pub source_sites: Vec<SiteId>,
}

impl FederationLayout {
    /// Every provider site, across all shards.
    pub fn providers(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.providers_by_shard.iter().flatten().copied()
    }
}

/// Builds the system for a federation run: ring-of-cliques topology, one
/// broker (+ ticket agent) per shard gateway — installed through a factory so
/// a recovered broker site comes back with its broker — and a worker+monitor
/// pair at every other site.  Job sources are *not* installed; see
/// [`install_sources`].
pub fn build_federation(config: &FederationConfig) -> (TacomaSystem, FederationLayout) {
    assert!(
        config.clique_size >= 2,
        "need a provider next to each broker"
    );
    assert!(
        config.shards >= 1 && config.cliques.is_multiple_of(config.shards),
        "shard count must divide the clique count"
    );
    let sites = config.cliques * config.clique_size;
    let cliques_per_shard = config.cliques / config.shards;
    let broker_sites: Vec<SiteId> = (0..config.shards)
        .map(|b| SiteId(b * cliques_per_shard * config.clique_size))
        .collect();
    let shard_of_site = |site: SiteId| (site.0 / config.clique_size) / cliques_per_shard;

    let topology = Topology::ring_of_cliques(
        config.cliques,
        config.clique_size,
        LinkSpec::lan(),
        LinkSpec::wan(),
    );
    let cfg = config.clone();
    let brokers = broker_sites.clone();
    let clique_size = config.clique_size;
    let mut builder = TacomaSystem::builder()
        .topology(topology)
        .seed(config.seed)
        .shards(config.sim_shards)
        .with_agents_at(broker_sites.clone(), move |site| {
            let shard = (site.0 / clique_size) / cliques_per_shard;
            vec![
                Box::new(
                    FederatedBrokerAgent::new(
                        shard,
                        brokers
                            .iter()
                            .enumerate()
                            .filter(|(b, _)| *b as u32 != shard)
                            .map(|(b, s)| (b as u32, *s))
                            .collect(),
                        cfg.policy,
                        cfg.report_ttl,
                        cfg.report_period,
                        cfg.digest_period,
                    )
                    .shed_threshold(cfg.admission_threshold),
                ) as Box<dyn Agent>,
                Box::new(TicketAgent::new()) as Box<dyn Agent>,
            ]
        });
    if let Some(custody) = config.custody {
        builder = builder.custody(custody);
    }
    let mut sys = builder.build();

    let mut providers_by_shard: Vec<Vec<SiteId>> = vec![Vec::new(); config.shards as usize];
    let mut provider_index = 0usize;
    for s in 0..sites {
        let site = SiteId(s);
        if broker_sites.contains(&site) {
            continue;
        }
        let shard = shard_of_site(site);
        let capacity = config.capacities[provider_index % config.capacities.len().max(1)];
        provider_index += 1;
        sys.register_agent(site, Box::new(WorkerAgent::new(capacity)));
        sys.register_agent(
            site,
            Box::new(MonitorAgent::new(
                broker_sites[shard as usize],
                config.report_period,
                capacity,
            )),
        );
        providers_by_shard[shard as usize].push(site);
    }
    let source_sites: Vec<SiteId> = broker_sites.iter().map(|b| SiteId(b.0 + 1)).collect();
    (
        sys,
        FederationLayout {
            sites,
            broker_sites,
            providers_by_shard,
            source_sites,
        },
    )
}

/// Installs one job source per shard.  `backups[b]` is where shard `b`'s
/// clients fail over to while their primary broker is down (pass the primary
/// itself when there is no failover story, e.g. the single-broker baseline).
pub fn install_sources(
    sys: &mut TacomaSystem,
    config: &FederationConfig,
    layout: &FederationLayout,
    backups: &[SiteId],
) {
    let per_shard = config.jobs / config.shards;
    let remainder = config.jobs % config.shards;
    for (b, backup) in backups.iter().enumerate().take(config.shards as usize) {
        let jobs = per_shard + u32::from((b as u32) < remainder);
        sys.register_agent(
            layout.source_sites[b],
            Box::new(FederatedJobSource::new(
                layout.broker_sites[b],
                *backup,
                jobs,
                config.mean_job_ms,
                config.mean_interarrival_ms * config.shards as f64,
                format!("j{b}"),
            )),
        );
    }
}

/// What one federation run measured.
#[derive(Debug, Clone)]
pub struct FederationResult {
    /// Shard count the run used.
    pub shards: u32,
    /// Total sites.
    pub sites: u32,
    /// Jobs that completed.
    pub completed: u64,
    /// Jobs that never completed (submitted − completed).
    pub orphaned: u64,
    /// Time from start to last completion, in milliseconds.
    pub makespan_ms: f64,
    /// Mean queueing wait, in milliseconds.
    pub mean_wait_ms: f64,
    /// 95th-percentile queueing wait, in milliseconds.
    pub p95_wait_ms: f64,
    /// Load imbalance: max provider job count over the mean.
    pub imbalance: f64,
    /// Messages the whole run put on the network.
    pub net_messages: u64,
    /// Bytes the whole run put on the network (reports and digests dominate
    /// at scale — the broker-layer message volume the federation shrinks).
    pub net_bytes: u64,
    /// Jobs forwarded between brokers.
    pub forwarded: u64,
    /// Digests sent between brokers.
    pub digests_sent: u64,
    /// Shard adoptions performed by failover guards.
    pub adoptions: u64,
    /// Submissions shed by broker admission control.
    pub shed: u64,
    /// Remote sends that failed fast.
    pub send_failures: u64,
    /// Custodied meets that expired undelivered.
    pub meets_expired: u64,
}

/// Drives an already-built federation system until every job completes (or
/// `horizon` elapses) and collects the measurements.  The event queue never
/// drains on its own — monitors re-arm forever — so the run is deadline-
/// driven, stepping in slices and stopping early once all jobs are done.
pub fn drive_federation(
    sys: &mut TacomaSystem,
    config: &FederationConfig,
    layout: &FederationLayout,
    horizon: Duration,
) -> FederationResult {
    let deadline = SimTime::ZERO + horizon;
    let mut completed;
    let mut last_finish_us;
    let mut waits;
    let provider_sites: Vec<SiteId> = layout.providers().collect();
    let mut per_provider = vec![0u64; provider_sites.len()];
    loop {
        sys.run_for(Duration::from_millis(200));
        completed = 0u64;
        last_finish_us = 0u64;
        waits = Summary::new();
        for slot in per_provider.iter_mut() {
            *slot = 0;
        }
        for (i, site) in provider_sites.iter().enumerate() {
            if let Some(done) = sys
                .place(*site)
                .cabinets()
                .get(JOBS_CABINET)
                .and_then(|c| c.folder_ref(DONE).cloned())
            {
                for record in done.strings() {
                    let mut parts = record.split(':');
                    let _id = parts.next();
                    let wait: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                    let finish: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                    completed += 1;
                    per_provider[i] += 1;
                    waits.add(wait as f64 / 1000.0);
                    last_finish_us = last_finish_us.max(finish);
                }
            }
        }
        if completed >= config.jobs as u64 || sys.now() >= deadline {
            break;
        }
    }

    let broker_folder_len = |sys: &TacomaSystem, folder: &str| -> u64 {
        layout
            .broker_sites
            .iter()
            .map(|b| {
                sys.place(*b)
                    .cabinets()
                    .get(BROKER_CABINET)
                    .and_then(|c| c.folder_ref(folder).map(|f| f.len() as u64))
                    .unwrap_or(0)
            })
            .sum()
    };
    let mean_jobs = completed as f64 / provider_sites.len().max(1) as f64;
    let max_jobs = per_provider.iter().copied().max().unwrap_or(0) as f64;
    FederationResult {
        shards: config.shards,
        sites: layout.sites,
        completed,
        orphaned: (config.jobs as u64).saturating_sub(completed),
        makespan_ms: last_finish_us as f64 / 1000.0,
        mean_wait_ms: waits.mean(),
        p95_wait_ms: waits.percentile(95.0),
        imbalance: if mean_jobs > 0.0 {
            max_jobs / mean_jobs
        } else {
            0.0
        },
        net_messages: sys.net_metrics().total_messages(),
        net_bytes: sys.net_metrics().total_bytes().get(),
        forwarded: broker_folder_len(sys, FWD),
        digests_sent: broker_folder_len(sys, DIG_TX),
        adoptions: broker_folder_len(sys, ADOPTED),
        shed: broker_folder_len(sys, SHED),
        send_failures: sys.stats().send_failures,
        meets_expired: sys.stats().meets_expired,
    }
}

/// Runs one complete federation experiment (build, sources, drive): the E15
/// code path.  Sources fail over to their own primary (no crashes here);
/// E16's failover composition lives in the bench crate, where the ft layer's
/// guards are wired in.
pub fn run_federation_experiment(config: &FederationConfig) -> FederationResult {
    let (mut sys, layout) = build_federation(config);
    // Let every monitor's install-hook report land before jobs arrive.
    sys.run_for(Duration::from_millis(20));
    sys.reset_net_metrics();
    let backups = layout.broker_sites.clone();
    install_sources(&mut sys, config, &layout, &backups);
    // Horizon: the arrival window plus a generous drain allowance.  The
    // drive loop exits as soon as every job completes, so the allowance only
    // costs simulated (not wall-clock) time on a straggling run.
    let horizon_ms = config.jobs as f64 * config.mean_interarrival_ms + 30_000.0;
    drive_federation(
        &mut sys,
        config,
        &layout,
        Duration::from_secs_f64(horizon_ms / 1000.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(shards: u32) -> FederationConfig {
        FederationConfig {
            cliques: 8,
            clique_size: 4,
            shards,
            jobs: 48,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn digest_round_trips_including_non_finite_aggregates() {
        let digest = ShardDigest {
            shard: 3,
            broker_site: SiteId(12),
            live_providers: 0,
            total_queue: 0,
            total_cost: 0.0,
            total_capacity: 0.0,
            at_micros: 99,
        };
        let parsed = ShardDigest::from_briefcase(&digest.to_briefcase()).unwrap();
        assert_eq!(parsed, digest);
        assert!(parsed.aggregate_wait().is_infinite());
        assert!(ShardDigest::from_briefcase(&Briefcase::new()).is_none());
    }

    #[test]
    fn all_jobs_complete_federated_and_single() {
        for shards in [1u32, 4] {
            let result = run_federation_experiment(&small(shards));
            assert_eq!(result.completed, 48, "shards={shards} lost jobs");
            assert_eq!(result.orphaned, 0);
            assert!(result.makespan_ms > 0.0);
            assert!(result.net_bytes > 0);
        }
    }

    #[test]
    fn federation_cuts_broker_message_volume() {
        // Same fleet, same jobs: monitors reporting to a near-by shard
        // broker instead of across the ring must move fewer bytes, even
        // after paying for the digest gossip.
        let single = run_federation_experiment(&small(1));
        let federated = run_federation_experiment(&small(4));
        assert!(federated.digests_sent > 0, "brokers must gossip");
        assert!(
            federated.net_bytes < single.net_bytes,
            "federated {} bytes should undercut single-broker {}",
            federated.net_bytes,
            single.net_bytes
        );
    }

    #[test]
    fn results_are_deterministic_per_seed() {
        let a = run_federation_experiment(&small(4));
        let b = run_federation_experiment(&small(4));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.net_bytes, b.net_bytes);
        assert_eq!(a.p95_wait_ms, b.p95_wait_ms);
        assert_eq!(a.digests_sent, b.digests_sent);
    }

    #[test]
    fn broker_forwards_when_its_shard_is_empty() {
        // Shard 1's providers never report (we kill their monitors by
        // building a tiny layout and crashing the providers), so a submit to
        // shard 1 must be forwarded to a peer and still complete.
        let config = small(2);
        let (mut sys, layout) = build_federation(&config);
        sys.run_for(Duration::from_millis(50));
        // Crash every provider of shard 1; their reports expire.
        for site in &layout.providers_by_shard[1] {
            sys.net_mut().crash_now(*site);
        }
        sys.run_for(config.report_ttl + Duration::from_millis(300));
        let mut job = Briefcase::new();
        job.put_string(REQUEST, "submit");
        job.put_string(JOB, "fwd-test");
        job.put_string(JOB_SIZE, "20");
        sys.inject_meet_at(
            layout.source_sites[1],
            layout.broker_sites[1],
            AgentName::new(wellknown::BROKER),
            job,
        );
        sys.run_for(Duration::from_secs(5));
        let result_completed: u64 = layout.providers_by_shard[0]
            .iter()
            .map(|s| {
                sys.place(*s)
                    .cabinets()
                    .get(JOBS_CABINET)
                    .and_then(|c| c.folder_ref(DONE).map(|f| f.len() as u64))
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(result_completed, 1, "the forwarded job runs on shard 0");
        let fwd = sys
            .place(layout.broker_sites[1])
            .cabinets()
            .get(BROKER_CABINET)
            .and_then(|c| c.folder_ref(FWD).map(|f| f.len()))
            .unwrap_or(0);
        assert_eq!(fwd, 1, "the forward was recorded");
    }

    #[test]
    fn saturated_federation_sheds_at_admission() {
        // An aggressive threshold with a heavy burst: every shard's digest
        // reports saturation, so late submits are shed — recorded in the
        // SHED folder instead of queueing without bound.
        let mut config = small(2);
        config.jobs = 96;
        config.mean_job_ms = 400.0;
        config.mean_interarrival_ms = 2.0;
        config.admission_threshold = Some(0.5);
        let result = run_federation_experiment(&config);
        assert!(result.shed > 0, "overload must shed: {result:?}");
        assert!(
            result.completed >= 1,
            "admitted jobs still complete: {result:?}"
        );
        assert!(
            result.shed <= result.orphaned,
            "every shed job must be accounted among the uncompleted: {result:?}"
        );

        // The identical run without admission control sheds nothing.
        config.admission_threshold = None;
        let open = run_federation_experiment(&config);
        assert_eq!(open.shed, 0);
    }

    #[test]
    fn threshold_high_enough_changes_nothing() {
        let mut config = small(2);
        config.admission_threshold = Some(f64::INFINITY);
        let gated = run_federation_experiment(&config);
        config.admission_threshold = None;
        let plain = run_federation_experiment(&config);
        assert_eq!(gated.completed, plain.completed);
        assert_eq!(gated.shed, 0);
        assert_eq!(gated.net_bytes, plain.net_bytes);
    }
}
