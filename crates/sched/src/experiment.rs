//! The scheduling experiment driver (E7).
//!
//! Builds a complete system — one front site hosting the broker and ticket
//! agents, `providers` provider sites each hosting a worker and a monitor —
//! submits a stream of jobs with exponential inter-arrival times, and reports
//! makespan, queueing waits and load imbalance for a given placement policy.

use crate::agents::{
    BrokerAgent, MonitorAgent, TicketAgent, WorkerAgent, DONE, JOB, JOBS_CABINET, JOB_SIZE,
    REQUEST, STALE_REPORT_PERIODS,
};
use crate::policy::PlacementPolicy;
use tacoma_core::prelude::*;
use tacoma_core::TacomaSystem;
use tacoma_net::{LinkSpec, Topology};
use tacoma_util::Summary;

/// Parameters of one scheduling run.
#[derive(Debug, Clone)]
pub struct SchedulingConfig {
    /// Number of provider sites.
    pub providers: u32,
    /// Relative capacities of the providers (cycled if shorter than `providers`).
    pub capacities: Vec<f64>,
    /// Number of jobs to submit.
    pub jobs: u32,
    /// Mean job size in milliseconds of work at capacity 1.0.
    pub mean_job_ms: f64,
    /// Mean inter-arrival time between job submissions, in milliseconds.
    pub mean_interarrival_ms: f64,
    /// The broker's placement policy.
    pub policy: PlacementPolicy,
    /// Monitor reporting period.
    pub report_period: Duration,
    /// Event-queue shards for the network simulator (`1` = single queue;
    /// any value produces byte-identical results).
    pub sim_shards: u32,
    /// Random seed.
    pub seed: u64,
}

impl Default for SchedulingConfig {
    fn default() -> Self {
        SchedulingConfig {
            providers: 4,
            capacities: vec![1.0, 2.0, 4.0, 1.0],
            jobs: 100,
            mean_job_ms: 80.0,
            mean_interarrival_ms: 30.0,
            policy: PlacementPolicy::LoadBased,
            report_period: Duration::from_millis(50),
            sim_shards: 1,
            seed: 42,
        }
    }
}

/// What one scheduling run measured.
#[derive(Debug, Clone)]
pub struct SchedulingResult {
    /// The policy that produced this result.
    pub policy: PlacementPolicy,
    /// Jobs that completed.
    pub completed: u64,
    /// Time from first submission to last completion, in milliseconds.
    pub makespan_ms: f64,
    /// Mean time jobs spent queued (excluding service), in milliseconds.
    pub mean_wait_ms: f64,
    /// 95th-percentile queueing wait, in milliseconds.
    pub p95_wait_ms: f64,
    /// Jobs completed per provider site.
    pub per_provider: Vec<u64>,
    /// Load imbalance: max provider job count divided by the mean.
    pub imbalance: f64,
    /// Total bytes the scheduling machinery moved over the network.
    pub network_bytes: u64,
}

/// The agent that injects jobs into the broker with random inter-arrival times.
struct JobSource {
    remaining: u32,
    mean_job_ms: f64,
    mean_interarrival_ms: f64,
    next_id: u32,
}

impl Agent for JobSource {
    fn name(&self) -> AgentName {
        AgentName::new("job_source")
    }

    fn on_install(&mut self, ctx: &mut MeetCtx<'_>) {
        ctx.schedule(
            AgentName::new("job_source"),
            0,
            Duration::from_millis(1),
            Briefcase::new(),
        );
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, _bc: Briefcase) -> MeetOutcome {
        if self.remaining == 0 {
            return Ok(Briefcase::new());
        }
        self.remaining -= 1;
        let size_ms = ctx.rng().exponential(self.mean_job_ms).max(1.0) as u64;
        let mut job = Briefcase::new();
        job.put_string(REQUEST, "submit");
        job.put_string(JOB, format!("job{}", self.next_id));
        job.put_string(JOB_SIZE, size_ms.to_string());
        self.next_id += 1;
        ctx.local_meet_async(AgentName::new(wellknown::BROKER), job);
        if self.remaining > 0 {
            let gap = ctx.rng().exponential(self.mean_interarrival_ms).max(0.1);
            ctx.schedule(
                AgentName::new("job_source"),
                0,
                Duration::from_secs_f64(gap / 1000.0),
                Briefcase::new(),
            );
        }
        Ok(Briefcase::new())
    }
}

/// Runs one scheduling experiment and returns its measurements.
pub fn run_scheduling_experiment(config: &SchedulingConfig) -> SchedulingResult {
    let sites = config.providers + 1;
    let mut sys = TacomaSystem::builder()
        .topology(Topology::star(sites, LinkSpec::default()))
        .seed(config.seed)
        .shards(config.sim_shards)
        .build();

    // Site 0: broker, ticket and the job source.  The broker trusts reports
    // for a few monitor periods and no longer (dead providers age out).
    sys.register_agent(
        SiteId(0),
        Box::new(BrokerAgent::new(config.policy).with_staleness(
            config.report_period.times(STALE_REPORT_PERIODS),
            config.report_period,
        )),
    );
    sys.register_agent(SiteId(0), Box::new(TicketAgent::new()));

    // Provider sites: worker + monitor.
    let mut capacities = Vec::new();
    for p in 0..config.providers {
        let capacity = config.capacities[p as usize % config.capacities.len().max(1)];
        capacities.push(capacity);
        let site = SiteId(p + 1);
        sys.register_agent(site, Box::new(WorkerAgent::new(capacity)));
        sys.register_agent(
            site,
            Box::new(MonitorAgent::new(SiteId(0), config.report_period, capacity)),
        );
    }
    // Run the monitors' install hooks' initial reports before jobs arrive.
    sys.run_for(Duration::from_millis(20));
    sys.reset_net_metrics();

    sys.register_agent(
        SiteId(0),
        Box::new(JobSource {
            remaining: config.jobs,
            mean_job_ms: config.mean_job_ms,
            mean_interarrival_ms: config.mean_interarrival_ms,
            next_id: 0,
        }),
    );
    // Kick the source (register_agent does not run install hooks; inject a meet).
    sys.inject_meet(SiteId(0), AgentName::new("job_source"), Briefcase::new());

    // Run long enough for every job to finish: generously, the total work on
    // the slowest provider plus arrival spread.
    let horizon_ms = (config.jobs as f64 * config.mean_interarrival_ms)
        + (config.jobs as f64 * config.mean_job_ms * 4.0)
        + 5_000.0;
    let mut completed;
    let mut last_finish_us;
    let mut waits;
    let mut per_provider = vec![0u64; config.providers as usize];
    let deadline = SimTime::ZERO + Duration::from_secs_f64(horizon_ms / 1000.0);

    // Step in slices so we can stop early once every job is done.
    loop {
        sys.run_for(Duration::from_millis(200));
        completed = 0;
        last_finish_us = 0;
        waits = Summary::new();
        for slot in per_provider.iter_mut() {
            *slot = 0;
        }
        for p in 0..config.providers {
            let site = SiteId(p + 1);
            if let Some(done) = sys
                .place(site)
                .cabinets()
                .get(JOBS_CABINET)
                .and_then(|c| c.folder_ref(DONE).cloned())
            {
                for record in done.strings() {
                    let mut parts = record.split(':');
                    let _id = parts.next();
                    let wait: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                    let finish: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                    completed += 1;
                    per_provider[p as usize] += 1;
                    waits.add(wait as f64 / 1000.0);
                    last_finish_us = last_finish_us.max(finish);
                }
            }
        }
        if completed >= config.jobs as u64 || sys.now() >= deadline {
            break;
        }
    }

    let mean_jobs = completed as f64 / config.providers.max(1) as f64;
    let max_jobs = per_provider.iter().copied().max().unwrap_or(0) as f64;
    SchedulingResult {
        policy: config.policy,
        completed,
        makespan_ms: last_finish_us as f64 / 1000.0,
        mean_wait_ms: waits.mean(),
        p95_wait_ms: waits.percentile(95.0),
        per_provider,
        imbalance: if mean_jobs > 0.0 {
            max_jobs / mean_jobs
        } else {
            0.0
        },
        network_bytes: sys.net_metrics().total_bytes().get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: PlacementPolicy) -> SchedulingConfig {
        SchedulingConfig {
            providers: 3,
            capacities: vec![1.0, 2.0, 4.0],
            jobs: 30,
            mean_job_ms: 60.0,
            mean_interarrival_ms: 20.0,
            policy,
            report_period: Duration::from_millis(40),
            sim_shards: 1,
            seed: 7,
        }
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        for policy in PlacementPolicy::ALL {
            let result = run_scheduling_experiment(&small(policy));
            assert_eq!(result.completed, 30, "policy {policy:?} lost jobs");
            assert!(result.makespan_ms > 0.0);
            assert!(result.network_bytes > 0);
            assert_eq!(result.per_provider.iter().sum::<u64>(), 30);
        }
    }

    #[test]
    fn load_based_beats_round_robin_on_heterogeneous_providers() {
        let load = run_scheduling_experiment(&small(PlacementPolicy::LoadBased));
        let rr = run_scheduling_experiment(&small(PlacementPolicy::RoundRobin));
        // The paper's claim: distributing by load and capacity beats ignoring
        // them.  With a 4× capacity spread the mean wait should be clearly lower.
        assert!(
            load.mean_wait_ms <= rr.mean_wait_ms,
            "load-based mean wait {} should not exceed round-robin {}",
            load.mean_wait_ms,
            rr.mean_wait_ms
        );
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let a = run_scheduling_experiment(&small(PlacementPolicy::Random));
        let b = run_scheduling_experiment(&small(PlacementPolicy::Random));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.per_provider, b.per_provider);
        assert_eq!(a.makespan_ms, b.makespan_ms);
    }
}
