//! Agent scheduling (paper §4 and the prototype's scheduling service of §6).
//!
//! The paper's scheduling story has three parts, all implemented here:
//!
//! * **Broker agents as matchmakers.**  "Some broker agents maintain databases
//!   of service providers; these brokers serve as matchmakers. … Brokers are
//!   expected to communicate among themselves and with the service providers,
//!   so that requests can be distributed amongst service providers based on
//!   load and capacity."  [`agents::BrokerAgent`] keeps the provider database
//!   and the latest load reports and places jobs using a configurable
//!   [`policy::PlacementPolicy`].
//! * **The four-agent scheduling service.**  The prototype "uses four
//!   different agents …: one of these agents is the broker, another is
//!   responsible for monitoring the status of a site and reporting that to
//!   the brokers, one is a courier, and one issues tickets to allow access to
//!   the service."  Those are [`agents::BrokerAgent`], [`agents::MonitorAgent`],
//!   the `courier` from `tacoma-agents`, and [`agents::TicketAgent`];
//!   [`agents::WorkerAgent`] plays the provider being scheduled onto.
//! * **Protected agents.**  "Another use of broker agents is to enforce some
//!   protected agent's policies with regard to meeting other agents … the
//!   broker provides the only way to meet with the protected agent."
//!   [`protected::ProtectedBrokerAgent`] relays meets to an agent whose real
//!   name is secret and queues each request in a folder, as §4 describes.
//!
//! [`experiment::run_scheduling_experiment`] wires a whole system together and
//! is what experiment E7's bench harness calls.
//!
//! * **Broker federation.**  "Brokers are expected to communicate among
//!   themselves" — [`federation`] shards the provider fleet across several
//!   brokers that gossip aggregated [`federation::ShardDigest`]s, place with
//!   staleness-aware policies, forward jobs when a shard runs dry, and (with
//!   the ft layer's guards) fail a crashed broker's shard over to a peer.
//!   [`federation::run_federation_experiment`] is what E15 calls; E16 adds
//!   guards and a crash schedule on top in the bench crate.

#![warn(missing_docs)]

pub mod agents;
pub mod experiment;
pub mod federation;
pub mod load;
pub mod policy;
pub mod protected;

pub use agents::{BrokerAgent, MonitorAgent, TicketAgent, WorkerAgent};
pub use experiment::{run_scheduling_experiment, SchedulingConfig, SchedulingResult};
pub use federation::{
    run_federation_experiment, FederatedBrokerAgent, FederatedJobSource, FederationConfig,
    FederationLayout, FederationResult, ShardDigest,
};
pub use load::{LoadReport, ReportDb};
pub use policy::PlacementPolicy;
pub use protected::ProtectedBrokerAgent;
