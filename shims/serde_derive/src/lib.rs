//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The sibling `serde` shim gives the traits blanket impls, so the derives
//! have nothing to emit — they exist only so `#[derive(Serialize, ...)]`
//! attributes resolve.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
