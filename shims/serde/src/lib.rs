//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on wire-adjacent types but
//! never actually serializes through serde (the briefcase codec in
//! `tacoma_core::codec` is hand-rolled). The build environment has no
//! crates.io access, so this shim supplies the two trait names plus no-op
//! derive macros; blanket impls make every type trivially satisfy the traits
//! so bounds written against them keep compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use super::Serialize;
}
