//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate supplies the
//! subset of the criterion API the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a simple
//! mean-of-samples measurement printed as `ns/iter`; there is no statistical
//! analysis, plotting, or baseline comparison.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver; collects per-target configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing a configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("push", 100)` → label `push/100`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// A benchmark identified only by its parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` performs the timed runs.
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher<'_> {
    /// Time a closure: warm up, then run samples and record the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, counting iterations
        // so we can pick a per-sample iteration count.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.config.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.config.measurement_time.as_secs_f64() / self.config.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(f());
            }
            total += start.elapsed();
            total_iters += iters_per_sample;
        }
        self.mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        self.iters = total_iters;
    }
}

fn run_one(config: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        config,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "{label:<48} {:>14.1} ns/iter  ({} iters)",
        b.mean_ns, b.iters
    );
}

/// Declare a benchmark group function, optionally with a `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
