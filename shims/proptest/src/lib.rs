//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements the
//! slice of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with integer-range / `any` / tuple /
//! collection / regex-string strategies, and the `prop_assert*` macros.
//!
//! Generation is fully deterministic: each test function derives its RNG seed
//! from its own name plus the case index, so failures reproduce exactly.
//! Shrinking is intentionally not implemented — a failing case prints its
//! inputs via the panic message from the underlying `assert!`.

/// Number of generated cases per property.
pub const CASES: u32 = 64;

/// A deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Create a generator from a fixed seed.
    pub fn deterministic(seed: u64) -> Self {
        TestRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Derive a per-test, per-case seed from the test name.
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// `any::<T>()` — arbitrary values of a primitive type.
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// String literals act as regex-like string strategies (char-class subset).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `vec(strategy, size_range)` — vectors with lengths drawn from the range.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeMap`s from key/value strategies.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// `btree_map(key_strategy, value_strategy, size_range)`.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Generator for the char-class subset of regex string strategies.
mod regex {
    use super::TestRng;

    /// One `[class]{m,n}` (or single-char) atom.
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let span = atom.max - atom.min + 1;
            let len = atom.min + rng.below(span as u64) as usize;
            for _ in 0..len {
                let idx = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let class = if chars[i] == '[' {
                let close = find_close(&chars, i);
                let class = expand_class(&chars[i + 1..close]);
                i = close + 1;
                class
            } else {
                let c = if chars[i] == '\\' {
                    i += 1;
                    unescape(chars[i])
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                    None => {
                        let n = body.parse().unwrap();
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!class.is_empty(), "empty char class in {pattern:?}");
            atoms.push(Atom {
                chars: class,
                min,
                max,
            });
        }
        atoms
    }

    fn find_close(chars: &[char], open: usize) -> usize {
        let mut j = open + 1;
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 2,
                ']' => return j,
                _ => j += 1,
            }
        }
        panic!("unterminated char class");
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            let c = if body[i] == '\\' {
                i += 1;
                unescape(body[i])
            } else {
                body[i]
            };
            // Range like `a-z` (a literal `-` at the end of the class is a char).
            if i + 2 < body.len() && body[i + 1] == '-' && body[i + 2] != ']' {
                let hi = body[i + 2];
                for u in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(u) {
                        out.push(ch);
                    }
                }
                i += 3;
            } else {
                out.push(c);
                i += 1;
            }
        }
        out
    }
}

/// The subset of the proptest prelude the tests use.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Run each contained `#[test] fn name(pat in strategy, ...)` over
/// [`CASES`] deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::CASES {
                    let mut __rng = $crate::TestRng::deterministic(
                        $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), __case),
                    );
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_subset_generates_within_spec() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..200 {
            let s = "[A-Za-z_][A-Za-z0-9_]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
        }
        for _ in 0..200 {
            let s = "[ -~\\n]{0,200}".generate(&mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(2);
        for _ in 0..500 {
            let v = (-1000i64..1000).generate(&mut rng);
            assert!((-1000..1000).contains(&v));
            let u = (1u64..100).generate(&mut rng);
            assert!((1..100).contains(&u));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_expands(xs in crate::collection::vec(any::<u8>(), 0..8), n in 0usize..4) {
            prop_assert!(xs.len() < 8);
            prop_assert!(n < 4);
        }
    }
}
